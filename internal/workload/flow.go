package workload

import (
	"fmt"
	"math/rand"
	"time"

	"stabl/internal/chain"
)

// Flow is the aggregated form of Generator: one object modeling k clients'
// transaction streams. Where the classic path owns a Generator, an event
// loop and a nonce map per client, a flow derives everything arithmetically
// from one sequence counter — member, per-member sequence, sender account
// and nonce — so "millions of users" costs one struct plus a nonce slice
// bounded by the folded account count, not a heap of per-client state.
//
// Equivalence contract: a flow submitting one transaction per member per
// tick reproduces the classic per-client schedule exactly. Sequence s maps
// to member m = s mod k and per-member sequence t = s div k; the emitted
// TxID is MakeTxID(start+m, t), the sender account is the one client
// start+m would have used for its t-th transaction, and its nonce is that
// account's use count. Only the recipient draw differs structurally: the k
// modeled clients share one flow RNG stream instead of one stream each.
// Recipients never influence event timing (transfers cannot fail — genesis
// balances exceed any run's spend), so scores are unaffected; the
// flow-vs-per-client golden pins this.
type Flow struct {
	start      uint32 // global client index of member 0
	clients    int    // k, modeled clients
	perClient  int    // accounts per modeled client before folding
	acctBase   chain.Address
	accts      int // folded account count owned by this flow
	recipients int // recipient universe: addresses [0, recipients)
	nonces     []uint64
	seq        uint64
	rng        *rand.Rand
}

// NewFlow builds a flow modeling `clients` clients, namespaced from global
// client index `start`. The flow owns the folded account range [acctBase,
// acctBase+accts); accts == clients*perClient disables folding (the exact
// classic layout), smaller values fold many modeled clients onto a bounded
// account set so account state stays O(accts) regardless of k. recipients
// is the experiment-wide destination universe [0, recipients).
func NewFlow(start uint32, clients, perClient int, acctBase chain.Address, accts, recipients int, rng *rand.Rand) (*Flow, error) {
	if clients <= 0 || perClient <= 0 {
		return nil, fmt.Errorf("workload: flow needs positive clients (%d) and accounts per client (%d)", clients, perClient)
	}
	if accts <= 0 {
		return nil, fmt.Errorf("workload: flow needs a positive account count, got %d", accts)
	}
	if unfolded := clients * perClient; accts > unfolded {
		return nil, fmt.Errorf("workload: flow account count %d exceeds the unfolded layout %d", accts, unfolded)
	}
	if recipients <= 0 {
		return nil, fmt.Errorf("workload: flow needs a positive recipient universe, got %d", recipients)
	}
	return &Flow{
		start:      start,
		clients:    clients,
		perClient:  perClient,
		acctBase:   acctBase,
		accts:      accts,
		recipients: recipients,
		nonces:     make([]uint64, accts),
		rng:        rng,
	}, nil
}

// Clients returns k, the number of clients this flow models.
func (f *Flow) Clients() int { return f.clients }

// Next produces the next transaction, stamped with the submission time.
// Callers submit in whole member rounds (k calls per tick), so member
// attribution is s mod k without per-member state.
func (f *Flow) Next(now time.Duration) chain.Tx {
	member := uint32(f.seq % uint64(f.clients))
	t := f.seq / uint64(f.clients)
	// The account client start+member would use for its t-th transaction,
	// folded onto this flow's account range.
	idx := int((uint64(member)*uint64(f.perClient) + t%uint64(f.perClient)) % uint64(f.accts))
	from := f.acctBase + chain.Address(idx)
	to := chain.Address(f.rng.Intn(f.recipients))
	for to == from && f.recipients > 1 {
		to = chain.Address(f.rng.Intn(f.recipients))
	}
	nonce := f.nonces[idx]
	f.nonces[idx] = nonce + 1
	tx := chain.Tx{
		ID:        chain.MakeTxID(f.start+member, uint32(t)),
		From:      from,
		To:        to,
		Amount:    1,
		Nonce:     nonce,
		Submitted: now,
	}
	f.seq++
	return tx
}

// Issued returns how many transactions have been generated across all
// modeled clients.
func (f *Flow) Issued() uint64 { return f.seq }
