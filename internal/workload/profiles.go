package workload

import (
	"math"
	"time"
)

// Profile shapes a client's send rate over time: it returns a non-negative
// multiplier applied to the base rate at virtual time t. The paper's
// evaluation uses a constant rate and names fluctuating workloads and
// request bursts as future work; these profiles implement that extension.
type Profile func(t time.Duration) float64

// Constant returns the always-1 profile (the paper's workload).
func Constant() Profile {
	return func(time.Duration) float64 { return 1 }
}

// Burst alternates between the base rate and rate*factor: every period, the
// first burstLen is spent bursting.
func Burst(period, burstLen time.Duration, factor float64) Profile {
	if period <= 0 {
		period = time.Minute
	}
	if burstLen <= 0 || burstLen > period {
		burstLen = period / 4
	}
	return func(t time.Duration) float64 {
		if t%period < burstLen {
			return factor
		}
		return 1
	}
}

// Ramp grows the multiplier linearly from start to end over duration and
// holds it there.
func Ramp(start, end float64, duration time.Duration) Profile {
	if duration <= 0 {
		return func(time.Duration) float64 { return end }
	}
	return func(t time.Duration) float64 {
		if t >= duration {
			return end
		}
		frac := float64(t) / float64(duration)
		return start + (end-start)*frac
	}
}

// Sine oscillates the multiplier around 1 with the given amplitude and
// period, clipped at zero — a smooth "diurnal" load pattern.
func Sine(amplitude float64, period time.Duration) Profile {
	if period <= 0 {
		period = time.Minute
	}
	return func(t time.Duration) float64 {
		v := 1 + amplitude*math.Sin(2*math.Pi*float64(t)/float64(period))
		if v < 0 {
			return 0
		}
		return v
	}
}
