package workload

import (
	"testing"
	"time"
)

func TestConstantProfile(t *testing.T) {
	p := Constant()
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if p(at) != 1 {
			t.Fatalf("Constant(%v) = %v", at, p(at))
		}
	}
}

func TestBurstProfile(t *testing.T) {
	p := Burst(time.Minute, 10*time.Second, 3)
	if p(5*time.Second) != 3 {
		t.Fatalf("in burst = %v", p(5*time.Second))
	}
	if p(30*time.Second) != 1 {
		t.Fatalf("between bursts = %v", p(30*time.Second))
	}
	if p(65*time.Second) != 3 {
		t.Fatalf("second period burst = %v", p(65*time.Second))
	}
}

func TestBurstProfileDefaults(t *testing.T) {
	p := Burst(0, 0, 2)
	if p(0) != 2 {
		t.Fatal("defaulted burst profile broken")
	}
}

func TestRampProfile(t *testing.T) {
	p := Ramp(1, 3, 10*time.Second)
	if p(0) != 1 {
		t.Fatalf("ramp start = %v", p(0))
	}
	if got := p(5 * time.Second); got != 2 {
		t.Fatalf("ramp midpoint = %v", got)
	}
	if p(20*time.Second) != 3 {
		t.Fatalf("ramp end = %v", p(20*time.Second))
	}
	if Ramp(1, 5, 0)(0) != 5 {
		t.Fatal("zero-duration ramp should hold the end value")
	}
}

func TestSineProfileBoundsAndClipping(t *testing.T) {
	p := Sine(2, time.Minute) // amplitude beyond 1: must clip at zero
	min, max := 10.0, -10.0
	for s := 0; s < 120; s++ {
		v := p(time.Duration(s) * time.Second)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < 0 {
		t.Fatalf("sine profile went negative: %v", min)
	}
	if max <= 1 {
		t.Fatalf("sine profile never exceeded baseline: %v", max)
	}
}
