package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"stabl/internal/chain"
)

func testGen() *Generator {
	sets := Accounts(2, 4)
	return NewGenerator(1, sets[1], AllAccounts(sets), rand.New(rand.NewSource(1)))
}

func TestGeneratorUniqueIDs(t *testing.T) {
	g := testGen()
	seen := make(map[chain.TxID]bool)
	for i := 0; i < 1000; i++ {
		tx := g.Next(time.Duration(i))
		if seen[tx.ID] {
			t.Fatalf("duplicate ID %v", tx.ID)
		}
		seen[tx.ID] = true
		if tx.ID.Client() != 1 {
			t.Fatalf("client = %d", tx.ID.Client())
		}
	}
	if g.Issued() != 1000 {
		t.Fatalf("Issued = %d", g.Issued())
	}
}

func TestGeneratorNoncesStrictlyIncreasePerAccount(t *testing.T) {
	g := testGen()
	last := make(map[chain.Address]int64)
	for i := 0; i < 400; i++ {
		tx := g.Next(0)
		prev, seen := last[tx.From]
		if seen && int64(tx.Nonce) != prev+1 {
			t.Fatalf("nonce gap for %d: %d after %d", tx.From, tx.Nonce, prev)
		}
		if !seen && tx.Nonce != 0 {
			t.Fatalf("first nonce = %d", tx.Nonce)
		}
		last[tx.From] = int64(tx.Nonce)
	}
}

func TestGeneratorNeverSelfTransfer(t *testing.T) {
	g := testGen()
	for i := 0; i < 500; i++ {
		tx := g.Next(0)
		if tx.From == tx.To {
			t.Fatal("self transfer generated")
		}
	}
}

func TestGeneratorStampsSubmissionTime(t *testing.T) {
	g := testGen()
	tx := g.Next(42 * time.Second)
	if tx.Submitted != 42*time.Second {
		t.Fatalf("Submitted = %v", tx.Submitted)
	}
}

func TestAccountsPartition(t *testing.T) {
	sets := Accounts(3, 2)
	if len(sets) != 3 {
		t.Fatalf("sets = %d", len(sets))
	}
	all := AllAccounts(sets)
	if len(all) != 6 {
		t.Fatalf("all = %d", len(all))
	}
	seen := make(map[chain.Address]bool)
	for _, a := range all {
		if seen[a] {
			t.Fatalf("overlapping account %d", a)
		}
		seen[a] = true
	}
}

func TestGeneratorPanicsWithoutAccounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGenerator(0, nil, nil, rand.New(rand.NewSource(1)))
}

// Property: two generators with the same seed produce identical streams.
func TestPropertyGeneratorDeterminism(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		sets := Accounts(1, 3)
		g1 := NewGenerator(0, sets[0], sets[0], rand.New(rand.NewSource(seed)))
		g2 := NewGenerator(0, sets[0], sets[0], rand.New(rand.NewSource(seed)))
		for i := 0; i < int(n); i++ {
			if g1.Next(0) != g2.Next(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
