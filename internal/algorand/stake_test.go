package algorand

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/simnet"
)

func stakeValidator(t *testing.T, weights []float64) *validator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.StakeWeights = weights
	peers := make([]simnet.NodeID, 10)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	v, ok := NewSystem(cfg).NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	return v
}

func TestSortitionProportionalToStake(t *testing.T) {
	// Node 0 holds half the stake: it must win roughly half the rounds.
	weights := []float64{9, 1, 1, 1, 1, 1, 1, 1, 1, 1} // node 0: 50%
	v := stakeValidator(t, weights)
	wins := 0
	const rounds = 2000
	for r := 0; r < rounds; r++ {
		if v.Proposer(r) == 0 {
			wins++
		}
	}
	frac := float64(wins) / rounds
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("50%%-stake node proposed %.1f%% of rounds", frac*100)
	}
}

func TestSortitionEqualStakeUniform(t *testing.T) {
	v := stakeValidator(t, nil)
	counts := make(map[simnet.NodeID]int)
	const rounds = 3000
	for r := 0; r < rounds; r++ {
		counts[v.Proposer(r)]++
	}
	for id, c := range counts {
		frac := float64(c) / rounds
		if frac < 0.05 || frac > 0.16 {
			t.Fatalf("node %v proposed %.1f%% with equal stake", id, frac*100)
		}
	}
}

func TestSortitionDeterministicAcrossWeightedNodes(t *testing.T) {
	weights := []float64{3, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	a := stakeValidator(t, weights)
	b := stakeValidator(t, weights)
	for r := 0; r < 500; r++ {
		if a.Proposer(r) != b.Proposer(r) {
			t.Fatalf("round %d: weighted sortition diverges across nodes", r)
		}
	}
}

// TestWhaleCrashHurtsMore: crashing a validator that holds a large share of
// the sortition stake degrades Algorand more than crashing a small one —
// the stake-centralization risk behind the paper's 20%-coalition bound.
func TestWhaleCrashHurtsMore(t *testing.T) {
	run := func(weights []float64) float64 {
		t.Helper()
		cfg := DefaultConfig()
		cfg.StakeWeights = weights
		cmp, err := core.Compare(core.Config{
			System:   NewSystem(cfg),
			Seed:     21,
			Duration: 300 * time.Second,
			Fault: core.FaultPlan{
				Kind:     core.FaultCrash,
				Count:    1, // the harness crashes node 9
				InjectAt: 100 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Score.Infinite {
			t.Fatal("crash of one node must not be fatal")
		}
		return cmp.Score.Value
	}
	// Node 9 is the crash target in both runs; only its stake differs.
	small := run(nil)
	big := run([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 5}) // node 9: ~36%
	if big <= small {
		t.Fatalf("whale crash score %.2f not above small-stake crash %.2f", big, small)
	}
}
