package algorand

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

func unitValidator(t *testing.T, n int) (*sim.Scheduler, *validator) {
	t.Helper()
	sched := sim.New(5)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	v, ok := Default().NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	net.AddNode(0, v)
	for _, p := range peers[1:] {
		net.AddNode(p, nopPeer{})
	}
	net.StartAll()
	return sched, v
}

type nopPeer struct{}

func (nopPeer) Start(*simnet.Context)      {}
func (nopPeer) Stop()                      {}
func (nopPeer) Deliver(simnet.NodeID, any) {}

func TestCandidatesDistinctAndStable(t *testing.T) {
	_, v := unitValidator(t, 10)
	for r := 0; r < 100; r++ {
		cands := v.Candidates(r)
		if len(cands) != v.cfg.ProposerCandidates {
			t.Fatalf("round %d: %d candidates", r, len(cands))
		}
		if cands[0] == cands[1] {
			t.Fatalf("round %d: duplicate candidates %v", r, cands)
		}
		if v.rank(r, cands[0]) != 0 || v.rank(r, cands[1]) != 1 {
			t.Fatalf("round %d: rank inconsistent", r)
		}
	}
	if v.rank(0, 99) != -1 {
		t.Fatal("rank of non-candidate should be -1")
	}
}

func TestBestProposalPicksLowestRank(t *testing.T) {
	_, v := unitValidator(t, 10)
	cands := v.Candidates(0)
	v.onProposal(proposalMsg{Round: 0, Proposer: cands[1]})
	if got := v.bestProposal(0); got.Proposer != cands[1] {
		t.Fatalf("best = %v", got.Proposer)
	}
	v.onProposal(proposalMsg{Round: 0, Proposer: cands[0]})
	if got := v.bestProposal(0); got.Proposer != cands[0] {
		t.Fatalf("best after rank-1 arrival = %v, want %v", got.Proposer, cands[0])
	}
	// Non-candidate proposals are rejected.
	other := simnet.NodeID(0)
	for _, p := range v.base.Peers {
		if v.rank(0, p) == -1 {
			other = p
			break
		}
	}
	v.onProposal(proposalMsg{Round: 0, Proposer: other})
	if _, ok := v.proposals[0][other]; ok {
		t.Fatal("non-candidate proposal accepted")
	}
}

func TestSlowRoundResetsWithRefractory(t *testing.T) {
	sched, v := unitValidator(t, 10)
	v.filterTO = v.cfg.MinFilterTimeout
	v.slowRound()
	if v.filterTO != v.cfg.DefaultFilterTimeout {
		t.Fatalf("filterTO = %v after slow round", v.filterTO)
	}
	if v.Resets() != 1 {
		t.Fatalf("resets = %d", v.Resets())
	}
	// Within the refractory window further slow rounds are absorbed.
	v.filterTO = v.cfg.MinFilterTimeout
	v.slowRound()
	if v.filterTO != v.cfg.MinFilterTimeout {
		t.Fatal("reset fired inside the refractory window")
	}
	// After the window it fires again.
	sched.RunUntil(sched.Now() + v.cfg.ResetRefractory + time.Second)
	v.slowRound()
	if v.filterTO != v.cfg.DefaultFilterTimeout {
		t.Fatal("reset did not fire after the refractory window")
	}
}

func TestDynamicRoundTimeShrinksOnCommit(t *testing.T) {
	sched, v := unitValidator(t, 10)
	before := v.filterTO
	prop := proposalMsg{Round: 0, Height: 0, Proposer: v.Proposer(0)}
	v.onProposal(prop)
	// Quorum (9 of 10) of cert votes for the round commits it.
	for voter := simnet.NodeID(0); voter < 9; voter++ {
		v.onVote(voteMsg{Round: 0, Stage: stageCert, Voter: voter, Proposer: prop.Proposer})
	}
	if v.round != 1 {
		t.Fatalf("round = %d after commit", v.round)
	}
	if v.filterTO >= before {
		t.Fatalf("filter timeout did not shrink: %v -> %v", before, v.filterTO)
	}
	sched.RunUntil(time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatalf("height = %d", v.base.Ledger.Height())
	}
}

func TestNextVoteQuorumAdvancesSlowly(t *testing.T) {
	_, v := unitValidator(t, 10)
	v.filterTO = v.cfg.MinFilterTimeout
	for voter := simnet.NodeID(0); voter < 9; voter++ {
		v.onNext(nextMsg{Round: 0, Voter: voter})
	}
	if v.round != 1 {
		t.Fatalf("round = %d after next-vote quorum", v.round)
	}
	if v.filterTO != v.cfg.DefaultFilterTimeout {
		t.Fatalf("failed round did not reset the round time: %v", v.filterTO)
	}
}

func TestPullGossipExchangesPoolContents(t *testing.T) {
	sched := sim.New(6)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
	peers := []simnet.NodeID{0, 1}
	mkv := func(id simnet.NodeID) *validator {
		v, ok := Default().NewValidator(id, peers, chain.NewMonitor(), nil).(*validator)
		if !ok {
			t.Fatal("unexpected type")
		}
		return v
	}
	a, b := mkv(0), mkv(1)
	net.AddNode(0, a)
	net.AddNode(1, b)
	net.StartAll()
	tx := chain.Tx{ID: chain.MakeTxID(0, 1), From: 1, To: 2}
	b.base.Pool.Add(tx)
	// Drive a's pull gossip; with two live validators the transaction may
	// also simply commit, which equally proves it propagated.
	sched.RunUntil(10 * a.cfg.PullInterval)
	_, committed := a.base.Ledger.Committed(tx.ID)
	if !a.base.Pool.Contains(tx.ID) && !committed {
		t.Fatal("pull gossip did not propagate the peer's transaction")
	}
}
