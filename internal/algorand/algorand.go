// Package algorand models the Algorand blockchain (STABL §2): BA* consensus
// with VRF-style cryptographic sortition choosing each round's proposer,
// dynamic round times that shrink while rounds finalize quickly and reset to
// defaults when they do not, and push/pull transaction gossip.
//
// The model reproduces the behaviours STABL measures:
//
//   - Baseline ramp-up: default timing parameters are conservative; as
//     rounds finalize fast the filter timeout shrinks and throughput rises
//     over the first couple of minutes (§4).
//   - With f = t crashes, sortition keeps picking crashed proposers for a
//     fraction of rounds; those rounds time out and reset the dynamic round
//     time, causing periodic latency spikes (§4 "Algorand adapts slowly to
//     sudden failures").
//   - Fast transient recovery: restarted nodes actively rejoin and the
//     large block capacity absorbs the backlog in one sharp peak (§5).
//   - Partition recovery is bounded by gossip-network reconnection timers
//     (§6, ~99 s).
//   - The secure client changes little: the gossip network is fully
//     connected and transaction pools deduplicate (§7).
package algorand

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"stabl/internal/chain"
	"stabl/internal/committee"
	"stabl/internal/metrics"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// Config parameterizes the Algorand model.
type Config struct {
	// DefaultFilterTimeout is the initial (and reset) time a node waits
	// for the round proposal before voting; this is the knob the Dynamic
	// Round Time mechanism adapts.
	DefaultFilterTimeout time.Duration
	// MinFilterTimeout bounds the shrink.
	MinFilterTimeout time.Duration
	// Shrink multiplies the filter timeout after each fast round.
	Shrink float64
	// CertTimeout bounds the vote-collection phase after filtering.
	CertTimeout time.Duration
	// FallbackGrace is the extra wait before soft-voting a lower-ranked
	// proposal when the sortition winner's proposal is missing — the
	// agreement's next vote step.
	FallbackGrace time.Duration
	// ResetRefractory bounds how often a slow round may reset the
	// dynamic round time to its default (the adjustment works over
	// observation windows, not individual rounds).
	ResetRefractory time.Duration
	// MaxBlockTxs caps one proposal; Algorand blocks are large, which is
	// what makes its backlog peak sharp after recovery.
	MaxBlockTxs int
	// ProposerCandidates is how many sortition winners propose each
	// round; the filter step picks the best (lowest-ranked) received.
	ProposerCandidates int
	// PullInterval is the pull-gossip cadence.
	PullInterval time.Duration
	// PullBatch is how many transactions one pull response carries.
	PullBatch int
	// SortitionSeed perturbs the proposer schedule.
	SortitionSeed uint64
	// StakeWeights gives each validator's share of the currency, by
	// validator index (empty = equal stake). Sortition selects proposers
	// proportionally to stake, which is why the paper states a coalition
	// holding 20% of the currency can fork Algorand.
	StakeWeights []float64
	// Base configures the shared validator core.
	Base chain.BaseConfig
	// Conn configures the gossip connection layer.
	Conn simnet.ConnParams
}

// DefaultConfig returns the production-like parameters used by the STABL
// experiments.
func DefaultConfig() Config {
	return Config{
		DefaultFilterTimeout: 4 * time.Second,
		MinFilterTimeout:     1200 * time.Millisecond,
		Shrink:               0.97,
		CertTimeout:          time.Second,
		FallbackGrace:        500 * time.Millisecond,
		ResetRefractory:      200 * time.Second,
		MaxBlockTxs:          5000,
		ProposerCandidates:   2,
		PullInterval:         5 * time.Second,
		PullBatch:            500,
		Base: chain.BaseConfig{
			ExecRate: 5000,
		},
		Conn: simnet.ConnParams{
			HeartbeatInterval: 2 * time.Second,
			IdleTimeout:       20 * time.Second,
			ReconnectBase:     50 * time.Second,
			ReconnectCap:      100 * time.Second,
			Multiplier:        2,
			HandshakeTimeout:  2 * time.Second,
		},
	}
}

// System implements chain.System for Algorand.
type System struct {
	cfg Config

	// Committee mode (core.Config.CommitteeSize): consensus steps run on
	// sortition committees drawn from a shared, memoized schedule instead
	// of the full validator set. The mutex covers campaign/suite workers
	// building experiments off one System value concurrently; extraction
	// is pure, so sharing the schedule never couples their runs.
	mu            sync.Mutex //stabl:nodet goroutine-purity -- guards cross-run schedule memoization; extraction is pure, so sharing never couples runs
	committeeSize int
	sched         *committee.Schedule
	schedN        int
}

var _ chain.System = (*System)(nil)

// SetCommitteeSize switches the system into sortition-committee mode (zero
// restores full-membership consensus). core.Build wires
// core.Config.CommitteeSize through this before constructing validators.
func (s *System) SetCommitteeSize(size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.committeeSize != size {
		s.committeeSize = size
		s.sched = nil
	}
}

// schedule returns the shared committee schedule for an n-validator
// deployment, or nil when committee mode is off.
func (s *System) schedule(n int) *committee.Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.committeeSize <= 0 {
		return nil
	}
	if s.sched == nil || s.schedN != n {
		s.sched = committee.NewSchedule(s.stakeTable(n), s.cfg.SortitionSeed, s.committeeSize)
		s.schedN = n
	}
	return s.sched
}

// stakeTable converts the configured stake weights into the committee
// package's integer stake line (equal stakes by default). Weights are
// scaled to parts-per-million so small fractional stakes stay
// representable; every validator keeps at least one unit.
func (s *System) stakeTable(n int) *committee.Table {
	if len(s.cfg.StakeWeights) == 0 {
		return committee.Uniform(n)
	}
	stakes := make([]uint64, n)
	for i := range stakes {
		w := 1.0
		if i < len(s.cfg.StakeWeights) && s.cfg.StakeWeights[i] > 0 {
			w = s.cfg.StakeWeights[i]
		}
		stakes[i] = uint64(w * 1e6)
		if stakes[i] == 0 {
			stakes[i] = 1
		}
	}
	tab, err := committee.NewTable(stakes)
	if err != nil {
		panic(fmt.Sprintf("algorand: stake table: %v", err))
	}
	return tab
}

// NewSystem creates an Algorand system with the given configuration.
func NewSystem(cfg Config) *System { return &System{cfg: cfg} }

// Default creates an Algorand system with DefaultConfig.
func Default() *System { return NewSystem(DefaultConfig()) }

// Name implements chain.System.
func (s *System) Name() string { return "Algorand" }

// Tolerance implements chain.System: t = ceil(n/5) - 1, from the 20%
// coalition bound (§2).
func (s *System) Tolerance(n int) int { return chain.ToleranceFifth(n) }

// ConnParams implements chain.System.
func (s *System) ConnParams() simnet.ConnParams { return s.cfg.Conn }

// NewValidator implements chain.System.
func (s *System) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &validator{
		cfg:  s.cfg,
		base: chain.NewBaseNode(id, peers, mon, s.cfg.Base),
		n:    len(peers),
		t:    chain.ToleranceFifth(len(peers)),
		comm: s.schedule(len(peers)),
	}
	v.quorum = committee.Quorum(v.n, v.t)
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

// Vote stages of one BA* round in this model.
const (
	stageSoft = 1
	stageCert = 2
)

// Wire messages.
type (
	// txGossip is push gossip of a submitted transaction.
	txGossip struct {
		Tx chain.Tx
	}
	// pullReq asks a peer for pool transactions (pull gossip).
	pullReq struct{}
	// pullResp returns a sample of the peer's pool.
	pullResp struct {
		Txs []chain.Tx
	}
	// proposalMsg is the sortition winner's block proposal.
	proposalMsg struct {
		Round    int
		Height   int
		Parent   chain.Hash
		Proposer simnet.NodeID
		Txs      []chain.Tx
	}
	// voteMsg carries a committee vote for one candidate's proposal.
	voteMsg struct {
		Round    int
		Stage    int
		Voter    simnet.NodeID
		Proposer simnet.NodeID
	}
	// nextMsg votes to abandon a round whose proposer stayed silent.
	nextMsg struct {
		Round int
		Voter simnet.NodeID
	}
)

// Committee steps of one BA* round (committee mode). The proposer step
// shares the vote stages' numbering space: stageSoft/stageCert map onto
// their step values directly.
const (
	stepProposer = 0
	stepNext     = 3
)

type validator struct {
	cfg    Config
	base   *chain.BaseNode
	n      int
	t      int
	quorum int
	// comm, when non-nil, runs the consensus steps on sortition
	// committees: propose/vote/next only when seated, votes counted only
	// from seated members, quorums sized to the committee. All validators
	// of a run share the schedule; extraction is pure, so every node sees
	// identical committees without exchanging membership.
	comm *committee.Schedule

	ctx        *simnet.Context
	round      int
	filterTO   time.Duration
	roundTimer sim.Timer
	proposals  map[int]map[simnet.NodeID]*proposalMsg
	votes      map[int]map[string]map[simnet.NodeID]bool // round -> stage/proposer -> voters
	nexts      map[int]map[simnet.NodeID]bool
	certSent   map[int]bool
	committed  map[int]bool
	evidence   map[int]map[simnet.NodeID]bool // round -> senders, for jumps
	puller     *sim.Ticker
	resets     uint64
	lastReset  time.Duration
	everReset  bool
	rngPull    interface{ Intn(int) int }
}

var _ simnet.Handler = (*validator)(nil)

// Start implements simnet.Handler.
func (v *validator) Start(ctx *simnet.Context) {
	v.ctx = ctx
	v.base.Reset(ctx)
	v.round = 0
	v.filterTO = v.cfg.DefaultFilterTimeout
	v.proposals = make(map[int]map[simnet.NodeID]*proposalMsg)
	v.votes = make(map[int]map[string]map[simnet.NodeID]bool)
	v.nexts = make(map[int]map[simnet.NodeID]bool)
	v.certSent = make(map[int]bool)
	v.committed = make(map[int]bool)
	v.evidence = make(map[int]map[simnet.NodeID]bool)
	v.everReset = false
	v.lastReset = 0
	v.base.OnLocalSubmit = v.pushGossip
	v.rngPull = ctx.RNG("algorand.pull")
	v.puller = ctx.Every(v.cfg.PullInterval, v.pull)
	if v.base.Ledger.Height() > 0 {
		// Active recovery: restarted participation nodes immediately
		// fetch what they missed and rejoin the agreement.
		v.base.StartCatchUp()
	}
	v.enterRound(0)
}

// Stop implements simnet.Handler.
func (v *validator) Stop() {
	v.roundTimer.Stop()
	if v.puller != nil {
		v.puller.Stop()
	}
}

// Base exposes the validator core.
func (v *validator) Base() *chain.BaseNode { return v.base }

// FilterTimeout exposes the current dynamic round time (for tests).
func (v *validator) FilterTimeout() time.Duration { return v.filterTO }

// Resets counts dynamic-round-time resets (slow rounds).
func (v *validator) Resets() uint64 { return v.resets }

// Candidates returns the round's sortition ranking: every node computes a
// deterministic pseudo-random priority key, weighted by its stake (the
// exponential-key method: key = -ln(u)/stake), and the lowest keys win.
// Every node computes the identical ranking, crashed nodes included —
// exactly why crashed proposers keep being selected (§4).
func (v *validator) Candidates(round int) []simnet.NodeID {
	k := v.cfg.ProposerCandidates
	if k < 1 {
		k = 1
	}
	if k > v.n {
		k = v.n
	}
	if v.comm != nil {
		// Committee mode: the proposer candidates are the first k seats of
		// the round's proposer committee — extraction order is the
		// sortition priority, so no O(n log n) ranking of the full set.
		ord := v.comm.Committee(uint64(round), stepProposer).Order()
		if k > len(ord) {
			k = len(ord)
		}
		out := make([]simnet.NodeID, k)
		for i := 0; i < k; i++ {
			out[i] = v.base.Peers[ord[i]]
		}
		return out
	}
	type ranked struct {
		id  simnet.NodeID
		key float64
	}
	keys := make([]ranked, v.n)
	for i, id := range v.base.Peers {
		keys[i] = ranked{id: id, key: v.sortitionKey(round, i)}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
	out := make([]simnet.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].id
	}
	return out
}

// stake returns validator index i's stake weight (1 by default).
func (v *validator) stake(i int) float64 {
	if i < len(v.cfg.StakeWeights) && v.cfg.StakeWeights[i] > 0 {
		return v.cfg.StakeWeights[i]
	}
	return 1
}

// sortitionKey derives the VRF-style priority of validator index i for a
// round: uniform in (0,1) from a cryptographic hash (the stand-in for the
// VRF output), then exponentially weighted so that the win probability is
// proportional to stake.
func (v *validator) sortitionKey(round, i int) float64 {
	var buf [24]byte
	seed := v.cfg.SortitionSeed
	for j := 0; j < 8; j++ {
		buf[j] = byte(round >> (8 * j))
		buf[8+j] = byte(seed >> (8 * j))
		buf[16+j] = byte(i >> (8 * j))
	}
	sum := sha256.Sum256(buf[:])
	raw := binary.LittleEndian.Uint64(sum[:8])
	u := (float64(raw) + 1) / (float64(^uint64(0)) + 2) // (0,1)
	return -math.Log(u) / v.stake(i)
}

// Proposer returns the best-ranked sortition winner of a round.
func (v *validator) Proposer(round int) simnet.NodeID {
	return v.Candidates(round)[0]
}

// rank returns the candidate index of a node for a round, or -1.
func (v *validator) rank(round int, id simnet.NodeID) int {
	for i, c := range v.Candidates(round) {
		if c == id {
			return i
		}
	}
	return -1
}

// Committee-mode helpers. Validator ids double as stake-table member
// indices (the deployment assigns validators ids 0..n-1, matching their
// position in Peers), so membership checks are direct bitset lookups. In
// full-membership mode every node is seated at every step and the fixed
// n-t quorum applies.

// seated reports whether the local node sits on the (round, step)
// committee.
func (v *validator) seated(round int, step uint8) bool {
	if v.comm == nil {
		return true
	}
	return v.comm.Committee(uint64(round), step).IsMember(int(v.base.ID))
}

// countsAt reports whether a vote by voter counts at the (round, step)
// committee.
func (v *validator) countsAt(round int, step uint8, voter simnet.NodeID) bool {
	if v.comm == nil {
		return true
	}
	return v.comm.Committee(uint64(round), step).IsMember(int(voter))
}

// stepQuorum returns the vote threshold of the (round, step) committee.
func (v *validator) stepQuorum(round int, step uint8) int {
	if v.comm == nil {
		return v.quorum
	}
	return v.comm.Committee(uint64(round), step).Quorum()
}

// evidenceThreshold is how many distinct later-round senders prove the
// local node fell behind: t+1 over the full membership, a third of a
// committee plus one in committee mode.
func (v *validator) evidenceThreshold(round int) int {
	if v.comm == nil {
		return v.t + 1
	}
	return v.comm.Committee(uint64(round), uint8(stageSoft)).Evidence()
}

// Deliver implements simnet.Handler.
func (v *validator) Deliver(from simnet.NodeID, payload any) {
	payload, ok := v.base.Unwrap(from, payload)
	if !ok {
		return
	}
	if v.base.HandleClient(from, payload) {
		return
	}
	if v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case txGossip:
		v.base.Pool.Add(msg.Tx)
	case pullReq:
		v.ctx.Send(from, pullResp{Txs: v.base.Pool.Peek(v.cfg.PullBatch)})
	case pullResp:
		for _, tx := range msg.Txs {
			v.base.Pool.Add(tx)
		}
	case proposalMsg:
		v.noteEvidence(msg.Round, msg.Proposer)
		v.onProposal(msg)
	case voteMsg:
		v.noteEvidence(msg.Round, msg.Voter)
		v.onVote(msg)
	case nextMsg:
		v.noteEvidence(msg.Round, msg.Voter)
		v.onNext(msg)
	}
}

func (v *validator) pushGossip(tx chain.Tx) {
	v.base.Broadcast(txGossip{Tx: tx})
}

func (v *validator) pull() {
	if v.base.Gossips() {
		// Overlay mode: pull only from overlay neighbors (they never
		// include the local node). Exactly one rngPull draw either way.
		ns := v.base.Neighbors()
		if len(ns) == 0 {
			return
		}
		v.ctx.Send(ns[v.rngPull.Intn(len(ns))], pullReq{})
		return
	}
	peer := v.base.Peers[v.rngPull.Intn(len(v.base.Peers))]
	if peer == v.base.ID {
		return
	}
	v.ctx.Send(peer, pullReq{})
}

// noteEvidence jumps forward when t+1 distinct nodes demonstrably work on a
// later round.
func (v *validator) noteEvidence(round int, from simnet.NodeID) {
	if round <= v.round {
		return
	}
	ev, ok := v.evidence[round]
	if !ok {
		ev = make(map[simnet.NodeID]bool)
		v.evidence[round] = ev
	}
	ev[from] = true
	if len(ev) >= v.evidenceThreshold(round) {
		v.advance(round, false)
	}
}

func (v *validator) enterRound(round int) {
	v.round = round
	v.roundTimer.Stop()
	v.base.Consensus(metrics.EventRoundStart, round, v.Proposer(round), "")
	if v.rank(round, v.base.ID) >= 0 {
		v.propose(round)
	}
	// The filter step: collect proposals for one dynamic round time
	// before soft-voting; this is the adaptive delay of Dynamic Round
	// Time.
	v.roundTimer = v.ctx.After(v.filterTO, func() { v.onFilterStep(round) })
	// Replay quorums that assembled before we entered this round (e.g.
	// right after a jump).
	if voters := v.nexts[round]; len(voters) >= v.stepQuorum(round, stepNext) {
		v.advance(round+1, true)
	}
}

func (v *validator) propose(round int) {
	msg := proposalMsg{
		Round:    round,
		Height:   v.base.ChainTip(),
		Parent:   v.base.TipHash(),
		Proposer: v.base.ID,
		Txs:      v.base.ProposalTxs(v.cfg.MaxBlockTxs),
	}
	v.base.Broadcast(msg)
	v.onProposal(msg)
}

func (v *validator) onProposal(msg proposalMsg) {
	if msg.Round < v.round || v.rank(msg.Round, msg.Proposer) < 0 {
		return
	}
	props, ok := v.proposals[msg.Round]
	if !ok {
		props = make(map[simnet.NodeID]*proposalMsg)
		v.proposals[msg.Round] = props
	}
	if _, dup := props[msg.Proposer]; dup {
		return
	}
	m := msg
	props[msg.Proposer] = &m
}

// bestProposal returns the lowest-ranked received proposal of a round.
func (v *validator) bestProposal(round int) *proposalMsg {
	props := v.proposals[round]
	if len(props) == 0 {
		return nil
	}
	var best *proposalMsg
	bestRank := 1 << 30
	for _, p := range props {
		if r := v.rank(round, p.Proposer); r < bestRank {
			bestRank = r
			best = p
		}
	}
	return best
}

func (v *validator) castVote(round, stage int, proposer simnet.NodeID) {
	msg := voteMsg{Round: round, Stage: stage, Voter: v.base.ID, Proposer: proposer}
	v.base.Broadcast(msg)
	v.onVote(msg)
}

func (v *validator) onVote(msg voteMsg) {
	if msg.Round < v.round || v.committed[msg.Round] {
		return
	}
	if !v.countsAt(msg.Round, uint8(msg.Stage), msg.Voter) {
		return
	}
	stages, ok := v.votes[msg.Round]
	if !ok {
		stages = make(map[string]map[simnet.NodeID]bool)
		v.votes[msg.Round] = stages
	}
	key := fmt.Sprintf("%d/%d", msg.Stage, int(msg.Proposer))
	voters, ok := stages[key]
	if !ok {
		voters = make(map[simnet.NodeID]bool)
		stages[key] = voters
	}
	voters[msg.Voter] = true
	if msg.Round != v.round {
		return
	}
	if msg.Stage == stageSoft && len(voters) >= v.stepQuorum(msg.Round, stageSoft) && !v.certSent[msg.Round] {
		v.certSent[msg.Round] = true
		if v.seated(msg.Round, stageCert) {
			v.castVote(msg.Round, stageCert, msg.Proposer)
		}
	}
	if msg.Stage == stageCert && len(voters) >= v.stepQuorum(msg.Round, stageCert) {
		v.commitRound(msg.Round, msg.Proposer)
	}
}

func (v *validator) commitRound(round int, proposer simnet.NodeID) {
	if v.committed[round] {
		return
	}
	prop := v.proposals[round][proposer]
	if prop == nil {
		// Certified without content (e.g. right after a jump); block
		// sync will deliver the block.
		return
	}
	v.committed[round] = true
	v.base.Consensus(metrics.EventCommit, round, proposer, "")
	v.base.SubmitBlock(chain.Block{
		Height:    prop.Height,
		Proposer:  prop.Proposer,
		Parent:    prop.Parent,
		Txs:       prop.Txs,
		DecidedAt: v.ctx.Now(),
	})
	// Fast round: the dynamic round time shrinks.
	v.filterTO = time.Duration(float64(v.filterTO) * v.cfg.Shrink)
	if v.filterTO < v.cfg.MinFilterTimeout {
		v.filterTO = v.cfg.MinFilterTimeout
	}
	v.advance(round+1, false)
}

// onFilterStep closes the proposal-collection phase: soft-vote the proposal
// if one arrived, otherwise signal the round as failed.
func (v *validator) onFilterStep(round int) {
	if round != v.round || v.committed[round] {
		return
	}
	if prop := v.bestProposal(round); prop != nil {
		if prop.Proposer != v.Proposer(round) {
			// The sortition winner's proposal is missing: the round
			// falls back to a lower rank through an extra vote step,
			// and Dynamic Round Time marks the round slow (§4).
			v.slowRound()
			v.base.Consensus(metrics.EventLeaderChange, round, prop.Proposer, "sortition winner silent, falling back")
			v.roundTimer = v.ctx.After(v.cfg.FallbackGrace, func() {
				if round != v.round || v.committed[round] {
					return
				}
				fallback := v.bestProposal(round)
				if fallback == nil {
					v.onRoundStuck(round)
					return
				}
				if v.seated(round, stageSoft) {
					v.castVote(round, stageSoft, fallback.Proposer)
				}
				v.roundTimer = v.ctx.After(v.cfg.CertTimeout, func() { v.onRoundStuck(round) })
			})
			return
		}
		if v.seated(round, stageSoft) {
			v.castVote(round, stageSoft, prop.Proposer)
		}
		v.roundTimer = v.ctx.After(v.cfg.CertTimeout, func() { v.onRoundStuck(round) })
		return
	}
	v.onRoundStuck(round)
}

// slowRound resets the adaptive filter timeout to its conservative default,
// at most once per refractory window (§4: "there are periods when the
// decreased timing parameters are reset to their default values").
func (v *validator) slowRound() {
	now := v.ctx.Now()
	if v.everReset && now-v.lastReset < v.cfg.ResetRefractory {
		return
	}
	v.everReset = true
	v.lastReset = now
	v.filterTO = v.cfg.DefaultFilterTimeout
	v.resets++
}

// onRoundStuck fires when the round did not finalize within the dynamic
// round time: vote to move to the next round, re-arming so the signal keeps
// going out until the network moves (or a lost quorum returns).
func (v *validator) onRoundStuck(round int) {
	if round != v.round || v.committed[round] {
		return
	}
	v.base.Consensus(metrics.EventTimeout, round, v.Proposer(round), "round stuck")
	// The timer re-arms between the broadcast and the local vote: onNext
	// may advance the round, and the round-entry timer it installs must
	// survive this handler.
	if v.seated(round, stepNext) {
		msg := nextMsg{Round: round, Voter: v.base.ID}
		v.base.Broadcast(msg)
		v.roundTimer = v.ctx.After(v.filterTO+v.cfg.CertTimeout, func() { v.onRoundStuck(round) })
		v.onNext(msg)
		return
	}
	v.roundTimer = v.ctx.After(v.filterTO+v.cfg.CertTimeout, func() { v.onRoundStuck(round) })
}

func (v *validator) onNext(msg nextMsg) {
	if msg.Round < v.round {
		return
	}
	if !v.countsAt(msg.Round, stepNext, msg.Voter) {
		return
	}
	voters, ok := v.nexts[msg.Round]
	if !ok {
		voters = make(map[simnet.NodeID]bool)
		v.nexts[msg.Round] = voters
	}
	voters[msg.Voter] = true
	if msg.Round == v.round && len(voters) >= v.stepQuorum(msg.Round, stepNext) {
		v.advance(msg.Round+1, true)
	}
}

// advance enters a later round; slow == true means the round failed and the
// dynamic round time backs off toward its conservative default (§4).
func (v *validator) advance(round int, slow bool) {
	if round <= v.round {
		return
	}
	if slow {
		v.slowRound()
	}
	for r := range v.votes {
		if r < round {
			delete(v.votes, r)
			delete(v.certSent, r)
			delete(v.committed, r)
		}
	}
	for r := range v.proposals {
		if r < round-1 {
			delete(v.proposals, r)
		}
	}
	for r := range v.nexts {
		if r < round {
			delete(v.nexts, r)
		}
	}
	for r := range v.evidence {
		if r <= round {
			delete(v.evidence, r)
		}
	}
	v.enterRound(round)
	if v.base.HeadPending() > v.base.Ledger.Height() {
		v.base.StartCatchUp()
	}
}
