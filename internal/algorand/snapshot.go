package algorand

import (
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// validatorState is an Algorand validator checkpoint. Queued round closures
// capture only round numbers and the validator pointer, so plain deep copies
// of the vote books suffice; proposal messages are immutable once buffered
// and are shared by pointer.
type validatorState struct {
	base      chain.BaseState
	ctx       *simnet.Context
	round     int
	filterTO  time.Duration
	timer     sim.Timer
	proposals map[int]map[simnet.NodeID]*proposalMsg
	votes     map[int]map[string]map[simnet.NodeID]bool
	nexts     map[int]map[simnet.NodeID]bool
	certSent  map[int]bool
	committed map[int]bool
	evidence  map[int]map[simnet.NodeID]bool
	puller    *sim.Ticker
	resets    uint64
	lastReset time.Duration
	everReset bool
	rngPull   interface{ Intn(int) int }
}

var _ snapshot.Forkable = (*validator)(nil)

// Snapshot captures the validator: its BaseNode core, round position, the
// adaptive filter timeout and every per-round book.
func (v *validator) Snapshot() snapshot.State {
	st := &validatorState{
		base:      v.base.SnapshotBase(),
		ctx:       v.ctx,
		round:     v.round,
		filterTO:  v.filterTO,
		timer:     v.roundTimer,
		proposals: make(map[int]map[simnet.NodeID]*proposalMsg, len(v.proposals)),
		votes:     make(map[int]map[string]map[simnet.NodeID]bool, len(v.votes)),
		nexts:     make(map[int]map[simnet.NodeID]bool, len(v.nexts)),
		certSent:  make(map[int]bool, len(v.certSent)),
		committed: make(map[int]bool, len(v.committed)),
		evidence:  make(map[int]map[simnet.NodeID]bool, len(v.evidence)),
		puller:    v.puller,
		resets:    v.resets,
		lastReset: v.lastReset,
		everReset: v.everReset,
		rngPull:   v.rngPull,
	}
	for r, props := range v.proposals {
		m := make(map[simnet.NodeID]*proposalMsg, len(props))
		for p, prop := range props {
			m[p] = prop
		}
		st.proposals[r] = m
	}
	for r, stages := range v.votes {
		sm := make(map[string]map[simnet.NodeID]bool, len(stages))
		for key, voters := range stages {
			sm[key] = copyVoters(voters)
		}
		st.votes[r] = sm
	}
	for r, voters := range v.nexts {
		st.nexts[r] = copyVoters(voters)
	}
	for r, sent := range v.certSent {
		st.certSent[r] = sent
	}
	for r, done := range v.committed {
		st.committed[r] = done
	}
	for r, senders := range v.evidence {
		st.evidence[r] = copyVoters(senders)
	}
	return st
}

// Restore rewinds the validator to a state captured by Snapshot.
func (v *validator) Restore(state snapshot.State) {
	st, ok := state.(*validatorState)
	if !ok {
		panic("algorand: validator.Restore on foreign state")
	}
	v.base.RestoreBase(st.base)
	v.ctx = st.ctx
	v.round = st.round
	v.filterTO = st.filterTO
	v.roundTimer = st.timer
	v.puller = st.puller
	v.resets = st.resets
	v.lastReset = st.lastReset
	v.everReset = st.everReset
	v.rngPull = st.rngPull
	v.proposals = make(map[int]map[simnet.NodeID]*proposalMsg, len(st.proposals))
	for r, props := range st.proposals {
		m := make(map[simnet.NodeID]*proposalMsg, len(props))
		for p, prop := range props {
			m[p] = prop
		}
		v.proposals[r] = m
	}
	v.votes = make(map[int]map[string]map[simnet.NodeID]bool, len(st.votes))
	for r, stages := range st.votes {
		sm := make(map[string]map[simnet.NodeID]bool, len(stages))
		for key, voters := range stages {
			sm[key] = copyVoters(voters)
		}
		v.votes[r] = sm
	}
	v.nexts = make(map[int]map[simnet.NodeID]bool, len(st.nexts))
	for r, voters := range st.nexts {
		v.nexts[r] = copyVoters(voters)
	}
	v.certSent = make(map[int]bool, len(st.certSent))
	for r, sent := range st.certSent {
		v.certSent[r] = sent
	}
	v.committed = make(map[int]bool, len(st.committed))
	for r, done := range st.committed {
		v.committed[r] = done
	}
	v.evidence = make(map[int]map[simnet.NodeID]bool, len(st.evidence))
	for r, senders := range st.evidence {
		v.evidence[r] = copyVoters(senders)
	}
}

func copyVoters(m map[simnet.NodeID]bool) map[simnet.NodeID]bool {
	out := make(map[simnet.NodeID]bool, len(m))
	for id := range m {
		out[id] = true
	}
	return out
}
