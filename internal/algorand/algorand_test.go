package algorand

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/simnet"
)

func TestTolerance(t *testing.T) {
	if got := Default().Tolerance(10); got != 1 {
		t.Fatalf("Tolerance(10) = %d, want 1", got)
	}
	if got := Default().Tolerance(20); got != 3 {
		t.Fatalf("Tolerance(20) = %d, want 3", got)
	}
}

func TestProposerDeterministicAcrossNodes(t *testing.T) {
	peers := []simnet.NodeID{0, 1, 2, 3, 4}
	mk := func(id simnet.NodeID) *validator {
		v, ok := Default().NewValidator(id, peers, chain.NewMonitor(), nil).(*validator)
		if !ok {
			t.Fatal("unexpected type")
		}
		return v
	}
	a, b := mk(0), mk(3)
	spread := make(map[simnet.NodeID]int)
	for r := 0; r < 200; r++ {
		pa, pb := a.Proposer(r), b.Proposer(r)
		if pa != pb {
			t.Fatalf("round %d: proposers diverge (%v vs %v)", r, pa, pb)
		}
		spread[pa]++
	}
	// Sortition must hit every node with reasonable frequency.
	for _, id := range peers {
		if spread[id] < 10 {
			t.Fatalf("node %v proposed only %d/200 rounds", id, spread[id])
		}
	}
}

func TestBaselineRampUp(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     4,
		Duration: 200 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatal("baseline lost liveness")
	}
	if res.UniqueCommits < res.Submitted*90/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
	// Dynamic round time: early latencies reflect the 4 s default filter
	// timeout, late ones the shrunken one. Compare mean commit cadence
	// indirectly via client latencies — the harness mixes them, so check
	// chain-side block production instead: more blocks per second late.
	earlyBlocks := res.Throughput.MeanRate(5*time.Second, 60*time.Second)
	lateBlocks := res.Throughput.MeanRate(140*time.Second, 195*time.Second)
	if lateBlocks < earlyBlocks*0.9 {
		t.Fatalf("no ramp: early=%.1f late=%.1f", earlyBlocks, lateBlocks)
	}
}

func TestCrashCausesPeriodicResets(t *testing.T) {
	cfg := core.Config{
		System:   Default(),
		Seed:     4,
		Duration: 300 * time.Second,
		Fault: core.FaultPlan{
			Kind:     core.FaultCrash,
			InjectAt: 100 * time.Second,
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatal("f=t crash must not kill Algorand")
	}
	if res.UniqueCommits < res.Submitted*85/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
}

func TestTransientSharpRecovery(t *testing.T) {
	cfg := core.Config{
		System:   Default(),
		Seed:     4,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// f = t+1 stalls the chain during the outage.
	during := res.Throughput.MeanRate(150*time.Second, 260*time.Second)
	if during > 20 {
		t.Fatalf("rate %.1f during outage, want near-stall", during)
	}
	if res.LivenessLost {
		t.Fatal("Algorand must recover from a transient failure")
	}
	// Sharp backlog peak: some bucket right after recovery far exceeds
	// the 200 TPS workload (large blocks drain the backlog at once).
	peak := 0.0
	for i := int(266); i < int(300) && i < len(res.Throughput.Counts); i++ {
		if r := res.Throughput.Rate(i); r > peak {
			peak = r
		}
	}
	if peak < 400 {
		t.Fatalf("backlog peak = %.0f tx/s, want a sharp spike >400", peak)
	}
	ref := res.Throughput.MeanRate(60*time.Second, 133*time.Second)
	delay, ok := res.Throughput.RecoveryTime(266*time.Second, ref, 0.7, 5)
	if !ok {
		t.Fatal("recovery not detected")
	}
	if delay > 30*time.Second {
		t.Fatalf("recovery took %v, want fast (paper: ~9s)", delay)
	}
}

func TestPartitionRecoverySlowerThanTransient(t *testing.T) {
	cfg := core.Config{
		System:   Default(),
		Seed:     4,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultPartition,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatal("Algorand must recover from a partition")
	}
	ref := res.Throughput.MeanRate(60*time.Second, 133*time.Second)
	delay, ok := res.Throughput.RecoveryTime(266*time.Second, ref, 0.7, 5)
	if !ok {
		t.Fatal("partition recovery not detected")
	}
	// Paper: ~99 s, bounded by gossip reconnection timers.
	if delay < 45*time.Second || delay > 130*time.Second {
		t.Fatalf("partition recovery = %v, want timer-bound (paper ~99s)", delay)
	}
}
