package overlay

import "stabl/internal/simnet"

// dupeKey identifies one broadcast: the origin plus its per-origin sequence
// number. Sequence numbers are persistent across restarts, so a rebooted
// origin never reuses a key its peers may still hold.
type dupeKey struct {
	origin simnet.NodeID
	seq    uint64
}

// dupemap is a bounded duplicate-suppression cache: a set plus a FIFO ring.
// When the ring is full the oldest entry is evicted, so memory stays O(cap)
// no matter how long the run is.
type dupemap struct {
	cap  int
	seen map[dupeKey]struct{}
	ring []dupeKey
	head int
}

func newDupemap(capacity int) dupemap {
	if capacity < 1 {
		capacity = 1
	}
	return dupemap{cap: capacity, seen: make(map[dupeKey]struct{}, capacity)}
}

// add records k, evicting the oldest entry when full. It reports whether k
// was new (i.e. the envelope should be delivered and relayed).
func (d *dupemap) add(k dupeKey) bool {
	if _, ok := d.seen[k]; ok {
		return false
	}
	if len(d.ring) < d.cap {
		d.ring = append(d.ring, k)
	} else {
		delete(d.seen, d.ring[d.head])
		d.ring[d.head] = k
		d.head = (d.head + 1) % d.cap
	}
	d.seen[k] = struct{}{}
	return true
}

// size returns the number of live entries (for tests and eviction bounds).
func (d *dupemap) size() int { return len(d.seen) }

// reset drops all entries, keeping the capacity. Used on node reboot: the
// cache is volatile state.
func (d *dupemap) reset() {
	d.seen = make(map[dupeKey]struct{}, d.cap)
	d.ring = d.ring[:0]
	d.head = 0
}

// dupeState is the snapshot form of a dupemap: the ring in FIFO order plus
// the head index. The set is rebuilt on restore, so the state is a plain
// value copy with no shared references.
type dupeState struct {
	ring []dupeKey
	head int
}

func (d *dupemap) snapshot() dupeState {
	return dupeState{ring: append([]dupeKey(nil), d.ring...), head: d.head}
}

func (d *dupemap) restore(s dupeState) {
	d.ring = append(d.ring[:0], s.ring...)
	d.head = s.head
	d.seen = make(map[dupeKey]struct{}, len(d.ring))
	for _, k := range d.ring {
		d.seen[k] = struct{}{}
	}
}
