package overlay

import (
	"sort"
	"time"

	"stabl/internal/simnet"
)

// Sender is the slice of simnet.Context the router needs: identity, virtual
// time and point-to-point sends. *simnet.Context satisfies it; tests use
// in-memory fakes.
type Sender interface {
	ID() simnet.NodeID
	Now() time.Duration
	Send(to simnet.NodeID, payload any)
}

var _ Sender = (*simnet.Context)(nil)

// Envelope wraps an application broadcast travelling over the overlay.
// Direct sends (replies, sync pulls, client traffic) are never enveloped and
// pass through Router.Unwrap untouched.
type Envelope struct {
	// Origin is the broadcasting node; Seq its persistent per-origin
	// sequence number. Together they key duplicate suppression.
	Origin simnet.NodeID
	Seq    uint64
	// Height is the kadcast relay ceiling: the receiver forwards only to
	// buckets strictly below it. floodHeight marks flood relays
	// (ring/regular): forward to every neighbor except the sender.
	Height int
	// Payload is the application message.
	Payload any
}

// stallLevel models one peer's outstanding relay queue: a level charged by
// every send and drained at Config.DrainRate per virtual second. Pure
// arithmetic over virtual time, so it replays identically at any worker
// count.
type stallLevel struct {
	level float64
	last  time.Duration
}

// Router is one node's overlay relay endpoint. It is owned by the node's
// event context: all methods run inside that node's (single-threaded) event
// handling, like every other piece of per-node chain state.
type Router struct {
	topo  *Topology
	self  simnet.NodeID
	seq   uint64 // persistent across restarts
	dupe  dupemap
	stall map[simnet.NodeID]stallLevel
	stats Stats
}

// NewRouter creates the relay endpoint for self on the given topology.
func NewRouter(topo *Topology, self simnet.NodeID) *Router {
	return &Router{
		topo:  topo,
		self:  self,
		dupe:  newDupemap(topo.cfg.DupeCap),
		stall: make(map[simnet.NodeID]stallLevel),
	}
}

// Neighbors returns this node's symmetric overlay neighborhood, ascending.
func (r *Router) Neighbors() []simnet.NodeID { return r.topo.Neighbors(r.self) }

// Stats returns the router's cumulative counters.
func (r *Router) Stats() Stats { return r.stats }

// Broadcast originates payload: it is enveloped under a fresh sequence
// number and pushed along the overlay. The local node is considered
// delivered already (chains hand their own copy to themselves), so only
// remote dissemination happens here.
func (r *Router) Broadcast(s Sender, payload any) {
	r.seq++
	r.dupe.add(dupeKey{origin: r.self, seq: r.seq})
	env := Envelope{Origin: r.self, Seq: r.seq, Payload: payload}
	r.stats.Origins++
	r.stats.OriginSends += r.relay(s, env, maxHeight, r.self)
}

// Unwrap filters one delivered payload. Non-envelope traffic passes through
// untouched. A fresh envelope is relayed onward and its payload returned
// with ok=true; a duplicate is counted and suppressed (ok=false).
func (r *Router) Unwrap(s Sender, from simnet.NodeID, payload any) (inner any, ok bool) {
	env, isEnv := payload.(Envelope)
	if !isEnv {
		return payload, true
	}
	if !r.dupe.add(dupeKey{origin: env.Origin, seq: env.Seq}) {
		r.stats.Duplicates++
		return nil, false
	}
	r.stats.Relayed += r.relay(s, env, env.Height, from)
	return env.Payload, true
}

// relay forwards env below the given height ceiling (kadcast) or floods it
// (ring/regular), skipping stalled peers deterministically. It returns the
// number of envelopes sent. from is excluded: it either originated or just
// relayed this envelope.
func (r *Router) relay(s Sender, env Envelope, height int, from simnet.NodeID) uint64 {
	now := s.Now()
	var sent uint64
	if r.topo.views != nil { // kadcast
		for _, bv := range r.topo.views[r.self] {
			if bv.Index >= height {
				continue
			}
			// Delegate rotation is a pure hash of the broadcast identity
			// and the bucket, so repeated broadcasts spread load over the
			// view without drawing from any RNG stream.
			offset := int(delegateHash(env.Origin, env.Seq, bv.Index, r.self) % uint64(len(bv.Peers)))
			picked, candidates := 0, 0
			for i := 0; i < len(bv.Peers) && picked < r.topo.cfg.Fanout; i++ {
				peer := bv.Peers[(offset+i)%len(bv.Peers)]
				if peer == env.Origin || peer == from {
					continue
				}
				candidates++
				if r.stalled(peer, now) {
					r.stats.StallSkips++
					continue
				}
				r.charge(peer, now)
				s.Send(peer, Envelope{Origin: env.Origin, Seq: env.Seq, Height: bv.Index, Payload: env.Payload})
				picked++
			}
			if picked == 0 && candidates > 0 {
				r.stats.StallDrops++
			}
			sent += uint64(picked)
		}
		return sent
	}
	for _, peer := range r.topo.Neighbors(r.self) { // flood
		if peer == env.Origin || peer == from {
			continue
		}
		if r.stalled(peer, now) {
			r.stats.StallSkips++
			continue
		}
		r.charge(peer, now)
		s.Send(peer, Envelope{Origin: env.Origin, Seq: env.Seq, Height: floodHeight, Payload: env.Payload})
		sent++
	}
	return sent
}

// delegateHash mixes the broadcast identity with the bucket and the relaying
// node into a rotation offset.
func delegateHash(origin simnet.NodeID, seq uint64, bucket int, self simnet.NodeID) uint64 {
	x := uint64(origin)*0x9E3779B97F4A7C15 ^ seq*0xC2B2AE3D27D4EB4F ^ uint64(bucket)*0x165667B19E3779F9 ^ uint64(self)*0x27D4EB2F165667C5
	return splitmix64(x)
}

// stalled reports whether peer's drained outstanding level is at or above
// the stall threshold.
func (r *Router) stalled(peer simnet.NodeID, now time.Duration) bool {
	st, ok := r.stall[peer]
	if !ok {
		return false
	}
	lvl := st.level - r.topo.cfg.DrainRate*(now-st.last).Seconds()
	return lvl >= float64(r.topo.cfg.StallThreshold)
}

// charge drains peer's level to now and adds one outstanding send.
func (r *Router) charge(peer simnet.NodeID, now time.Duration) {
	st := r.stall[peer]
	if st.last > 0 || st.level > 0 {
		st.level -= r.topo.cfg.DrainRate * (now - st.last).Seconds()
		if st.level < 0 {
			st.level = 0
		}
	}
	st.level++
	st.last = now
	r.stall[peer] = st
}

// Reset clears the volatile routing state on node reboot: the dupemap and
// the stall levels. The sequence counter survives — a restarted origin must
// not reuse sequence numbers its peers may still have cached — and the
// cumulative stats keep counting across incarnations.
func (r *Router) Reset() {
	r.dupe.reset()
	r.stall = make(map[simnet.NodeID]stallLevel)
}

// State is a value snapshot of a Router for run forking (snapshot.Forkable):
// no references are shared with the live router.
type State struct {
	seq   uint64
	dupe  dupeState
	peers []simnet.NodeID // stall keys, ascending
	lvls  []stallLevel    // stall values, parallel to peers
	stats Stats
}

// Snapshot captures the router state by value. Stall levels are serialized
// in ascending peer order so the snapshot bytes are map-order independent.
func (r *Router) Snapshot() State {
	st := State{seq: r.seq, dupe: r.dupe.snapshot(), stats: r.stats}
	st.peers = make([]simnet.NodeID, 0, len(r.stall))
	for peer := range r.stall {
		st.peers = append(st.peers, peer)
	}
	sort.Slice(st.peers, func(i, j int) bool { return st.peers[i] < st.peers[j] })
	st.lvls = make([]stallLevel, len(st.peers))
	for i, peer := range st.peers {
		st.lvls[i] = r.stall[peer]
	}
	return st
}

// Restore rewinds the router to a snapshot taken by Snapshot.
func (r *Router) Restore(st State) {
	r.seq = st.seq
	r.dupe.restore(st.dupe)
	r.stall = make(map[simnet.NodeID]stallLevel, len(st.peers))
	for i, peer := range st.peers {
		r.stall[peer] = st.lvls[i]
	}
	r.stats = st.stats
}
