package overlay

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"stabl/internal/simnet"
)

// maxHeight is the broadcast height of an origin: it admits every bucket, so
// the first hop covers the whole key space. Kadcast keys are 64-bit.
const maxHeight = 64

// floodHeight marks an envelope as flood-relayed (ring/regular): the
// receiver forwards to all neighbors except the sender, relying on the
// dupemap to terminate.
const floodHeight = -1

// BucketView is one kadcast distance bucket as seen by one node: the
// BucketK closest members by XOR distance, ascending.
type BucketView struct {
	// Index is the bucket number: the most significant differing key bit
	// between the owner and every member.
	Index int
	// Peers holds the view members, closest first.
	Peers []simnet.NodeID
}

// Topology is an immutable overlay graph derived purely from
// (seed, nodeIDs). It is shared read-only by every node's Router, so it is
// safe for concurrent use by the parallel kernel.
type Topology struct {
	cfg Config
	ids []simnet.NodeID
	// neighbors is the symmetric closure of the overlay edges, sorted per
	// node: the peers a node may exchange any validator traffic with
	// (relays out, replies and sync pulls back in).
	neighbors map[simnet.NodeID][]simnet.NodeID
	// views holds each node's kadcast bucket views, highest bucket first
	// (nil for flood topologies).
	views map[simnet.NodeID][]BucketView
	// keys holds the kadcast key per node (nil for flood topologies).
	keys map[simnet.NodeID]uint64
}

// New derives the overlay graph for the given sorted-or-not id set. The same
// (cfg, seed, ids) always yields the same adjacency, independent of input
// order, process or worker count.
func New(cfg Config, seed int64, ids []simnet.NodeID) (*Topology, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("overlay: New called without a topology (valid: %v)", Kinds())
	}
	if len(ids) < 2 {
		return nil, fmt.Errorf("overlay: need at least 2 nodes, got %d", len(ids))
	}
	sorted := append([]simnet.NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("overlay: duplicate node id %v", sorted[i])
		}
	}
	t := &Topology{cfg: cfg, ids: sorted}
	switch cfg.Topology {
	case KindKadcast:
		t.buildKadcast(seed)
	case KindRing:
		t.buildRing()
	case KindRegular:
		t.buildRegular(seed)
	}
	return t, nil
}

// Kind returns the topology name.
func (t *Topology) Kind() string { return t.cfg.Topology }

// Tuning returns the defaulted configuration the topology was built with.
func (t *Topology) Tuning() Config { return t.cfg }

// Nodes returns the member ids, ascending. Callers must not mutate.
func (t *Topology) Nodes() []simnet.NodeID { return t.ids }

// Neighbors returns the symmetric overlay neighborhood of id, ascending.
// Callers must not mutate. Unknown ids have no neighbors.
func (t *Topology) Neighbors(id simnet.NodeID) []simnet.NodeID { return t.neighbors[id] }

// Views returns id's kadcast bucket views, highest bucket first (nil for
// flood topologies). Callers must not mutate.
func (t *Topology) Views(id simnet.NodeID) []BucketView { return t.views[id] }

// Edges visits every undirected overlay edge (a < b) in ascending order.
func (t *Topology) Edges(visit func(a, b simnet.NodeID)) {
	for _, a := range t.ids {
		for _, b := range t.neighbors[a] {
			if a < b {
				visit(a, b)
			}
		}
	}
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mix used for
// kadcast key derivation and delegate rotation. Pure function, no state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// buildKadcast assigns every node a seed-derived 64-bit key and gives each
// node, per XOR-distance bucket, a view of the BucketK closest members.
// Coverage under truncation stays exact: a node's buckets below index i
// partition the key subtree it was delegated, each nonempty sub-subtree has
// a nonempty view, and one delegate per view covers it by induction.
func (t *Topology) buildKadcast(seed int64) {
	n := len(t.ids)
	keys := make(map[simnet.NodeID]uint64, n)
	used := make(map[uint64]bool, n)
	for _, id := range t.ids { // sorted order: collision re-salting is deterministic
		k := splitmix64(uint64(seed) ^ uint64(id)*0x9E3779B97F4A7C15)
		for used[k] {
			k = splitmix64(k)
		}
		used[k] = true
		keys[id] = k
	}
	t.keys = keys

	type memb struct {
		id   simnet.NodeID
		dist uint64
	}
	views := make(map[simnet.NodeID][]BucketView, n)
	adj := make(map[simnet.NodeID]map[simnet.NodeID]bool, n)
	var buckets [maxHeight][]memb
	for _, x := range t.ids {
		kx := keys[x]
		for b := range buckets {
			buckets[b] = buckets[b][:0]
		}
		for _, y := range t.ids {
			if y == x {
				continue
			}
			d := kx ^ keys[y]
			b := bits.Len64(d) - 1
			bk := buckets[b]
			if len(bk) == t.cfg.BucketK && bk[len(bk)-1].dist <= d {
				continue // farther than the whole view: cheap reject
			}
			i := sort.Search(len(bk), func(i int) bool { return bk[i].dist > d })
			if len(bk) < t.cfg.BucketK {
				bk = append(bk, memb{})
			}
			copy(bk[i+1:], bk[i:])
			bk[i] = memb{id: y, dist: d}
			buckets[b] = bk
		}
		var vs []BucketView
		for b := maxHeight - 1; b >= 0; b-- {
			if len(buckets[b]) == 0 {
				continue
			}
			peers := make([]simnet.NodeID, len(buckets[b]))
			for i, m := range buckets[b] {
				peers[i] = m.id
			}
			vs = append(vs, BucketView{Index: b, Peers: peers})
		}
		views[x] = vs
		for _, v := range vs {
			for _, y := range v.Peers {
				if adj[x] == nil {
					adj[x] = make(map[simnet.NodeID]bool)
				}
				if adj[y] == nil {
					adj[y] = make(map[simnet.NodeID]bool)
				}
				adj[x][y] = true
				adj[y][x] = true
			}
		}
	}
	t.views = views
	t.neighbors = sortAdjacency(t.ids, adj)
}

// buildRing connects the sorted ids in a cycle plus power-of-two shortcut
// chords: offsets 1, 2, 4, ... 2^Fanout. Purely positional — the seed does
// not participate.
func (t *Topology) buildRing() {
	n := len(t.ids)
	adj := make(map[simnet.NodeID]map[simnet.NodeID]bool, n)
	for i, x := range t.ids {
		off := 1
		for s := 0; s <= t.cfg.Fanout; s++ {
			if off >= n {
				break
			}
			y := t.ids[(i+off)%n]
			if y != x {
				if adj[x] == nil {
					adj[x] = make(map[simnet.NodeID]bool)
				}
				if adj[y] == nil {
					adj[y] = make(map[simnet.NodeID]bool)
				}
				adj[x][y] = true
				adj[y][x] = true
			}
			off *= 2
		}
	}
	t.neighbors = sortAdjacency(t.ids, adj)
}

// buildRegular unions ⌈Fanout/2⌉ seed-derived Hamiltonian cycles, giving an
// (approximately) Fanout-regular connected graph. The permutations come from
// a local generator derived from the topology seed at construction time —
// never from a scheduler stream — so building the overlay perturbs no
// experiment RNG.
func (t *Topology) buildRegular(seed int64) {
	n := len(t.ids)
	cycles := (t.cfg.Fanout + 1) / 2
	if cycles < 1 {
		cycles = 1
	}
	adj := make(map[simnet.NodeID]map[simnet.NodeID]bool, n)
	for c := 0; c < cycles; c++ {
		rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ uint64(c+1)*0xD1342543DE82EF95))))
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			x := t.ids[perm[i]]
			y := t.ids[perm[(i+1)%n]]
			if x == y {
				continue
			}
			if adj[x] == nil {
				adj[x] = make(map[simnet.NodeID]bool)
			}
			if adj[y] == nil {
				adj[y] = make(map[simnet.NodeID]bool)
			}
			adj[x][y] = true
			adj[y][x] = true
		}
	}
	t.neighbors = sortAdjacency(t.ids, adj)
}

// sortAdjacency freezes an adjacency-set map into sorted neighbor slices.
// The set maps are iterated in whatever order Go picks — the sort makes the
// result independent of it, and nothing downstream ever ranges a map.
func sortAdjacency(ids []simnet.NodeID, adj map[simnet.NodeID]map[simnet.NodeID]bool) map[simnet.NodeID][]simnet.NodeID {
	out := make(map[simnet.NodeID][]simnet.NodeID, len(ids))
	for _, x := range ids {
		set := adj[x]
		ns := make([]simnet.NodeID, 0, len(set))
		for y := range set {
			ns = append(ns, y)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		out[x] = ns
	}
	return out
}
