// Package overlay implements deterministic structured gossip overlays for
// the simulated network: kadcast-style XOR-bucketed broadcast trees,
// ring-with-shortcuts and random d-regular graphs, all derived purely from
// (seed, nodeIDs). A per-node Router relays chain broadcasts along the
// overlay with bounded duplicate suppression (dupemap) and deterministic
// per-peer stall detection, so per-tx dissemination drops from O(n) sends at
// the origin to O(fanout·log n) while every run stays byte-identical across
// worker counts.
//
// The overlay owns no RNG streams: topologies are built from a dedicated
// local generator at construction time and routing decisions (delegate
// rotation) come from pure hashes of (origin, seq, bucket, self), so an
// experiment with the overlay disabled replays bit-for-bit against a kernel
// that never linked this package.
package overlay

import (
	"fmt"
	"strings"
)

// Topology kinds accepted by Config.Topology.
const (
	// KindKadcast is the XOR-bucketed broadcast tree of the Kadcast
	// protocol: each node keeps the BucketK closest peers per distance
	// bucket and forwards a broadcast to Fanout delegates per bucket below
	// the envelope's height, giving O(Fanout·log n) sends per hop and exact
	// coverage by induction over the key trie.
	KindKadcast = "kadcast"
	// KindRegular is a random d-regular graph: the union of ⌈Fanout/2⌉
	// seed-derived Hamiltonian cycles, flooded with duplicate suppression.
	KindRegular = "regular"
	// KindRing is a ring over the sorted node ids with power-of-two
	// shortcut chords (1, 2, 4, ... 2^Fanout), flooded with duplicate
	// suppression.
	KindRing = "ring"
)

// Kinds lists the valid topology names in canonical order.
func Kinds() []string { return []string{KindKadcast, KindRegular, KindRing} }

// ParseKind validates a topology name, returning the canonical name or an
// error that enumerates the valid set (the ParseFaultKind convention).
func ParseKind(name string) (string, error) {
	for _, k := range Kinds() {
		if name == k {
			return k, nil
		}
	}
	return "", fmt.Errorf("overlay: unknown topology %q (valid: %s)", name, strings.Join(Kinds(), "|"))
}

// Defaults for zero Config fields, chosen so a 10k-node kadcast broadcast
// costs ~Fanout·log2(n) sends at the origin while stall skips stay dormant
// under healthy load.
const (
	DefaultFanout         = 4
	DefaultBucketK        = 8
	DefaultDupeCap        = 4096
	DefaultStallThreshold = 64
	DefaultDrainRate      = 256 // modeled relay drains per peer per second
)

// Config selects and parameterizes an overlay. The zero value (empty
// Topology) disables the overlay entirely: chains broadcast over the legacy
// full mesh and no Router is constructed.
type Config struct {
	// Topology is one of Kinds(), or empty for the legacy full mesh.
	Topology string `json:"topology,omitempty"`
	// Fanout is the per-bucket delegate count (kadcast), the number of
	// power-of-two shortcut chords (ring) or the target degree (regular).
	Fanout int `json:"fanout,omitempty"`
	// BucketK bounds each kadcast bucket view to the K closest peers by
	// XOR distance. Coverage stays exact for any K >= 1.
	BucketK int `json:"bucketK,omitempty"`
	// DupeCap bounds the duplicate-suppression cache per node; the oldest
	// entry is evicted FIFO beyond it.
	DupeCap int `json:"dupeCap,omitempty"`
	// StallThreshold is the modeled outstanding-relay level at which a
	// peer is considered stalled and deterministically skipped.
	StallThreshold int `json:"stallThreshold,omitempty"`
	// DrainRate is how fast a peer's modeled outstanding-relay level
	// decays, in sends per virtual second.
	DrainRate float64 `json:"drainRate,omitempty"`
}

// Enabled reports whether an overlay topology is configured.
func (c Config) Enabled() bool { return c.Topology != "" }

// WithDefaults fills zero tuning fields with the package defaults. The
// Topology itself is never defaulted: empty stays disabled.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.Fanout == 0 {
		c.Fanout = DefaultFanout
	}
	if c.BucketK == 0 {
		c.BucketK = DefaultBucketK
	}
	if c.DupeCap == 0 {
		c.DupeCap = DefaultDupeCap
	}
	if c.StallThreshold == 0 {
		c.StallThreshold = DefaultStallThreshold
	}
	if c.DrainRate == 0 {
		c.DrainRate = DefaultDrainRate
	}
	return c
}

// Validate checks the configuration. A disabled overlay must be entirely
// zero; an enabled one needs a known topology and non-negative tuning.
func (c Config) Validate() error {
	if !c.Enabled() {
		if c.Fanout != 0 || c.BucketK != 0 || c.DupeCap != 0 || c.StallThreshold != 0 || c.DrainRate != 0 {
			return fmt.Errorf("overlay: tuning fields set without a topology (set topology to one of %s)", strings.Join(Kinds(), "|"))
		}
		return nil
	}
	if _, err := ParseKind(c.Topology); err != nil {
		return err
	}
	if c.Fanout < 0 || c.BucketK < 0 || c.DupeCap < 0 || c.StallThreshold < 0 || c.DrainRate < 0 {
		return fmt.Errorf("overlay: negative tuning field in %+v", c)
	}
	return nil
}

// Stats counts overlay routing activity. All fields are commutative sums,
// so per-node stats can be added in any order.
type Stats struct {
	// Origins counts broadcasts originated through the overlay.
	Origins uint64 `json:"origins,omitempty"`
	// OriginSends counts envelopes sent by origins (first hop).
	OriginSends uint64 `json:"originSends,omitempty"`
	// Relayed counts envelopes re-sent by intermediate relays.
	Relayed uint64 `json:"relayed,omitempty"`
	// Duplicates counts received envelopes suppressed by the dupemap.
	Duplicates uint64 `json:"duplicates,omitempty"`
	// StallSkips counts per-peer sends skipped because the peer's modeled
	// outstanding-relay level exceeded the stall threshold.
	StallSkips uint64 `json:"stallSkips,omitempty"`
	// StallDrops counts kadcast buckets whose relay was dropped entirely
	// because every candidate delegate was stalled.
	StallDrops uint64 `json:"stallDrops,omitempty"`
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Origins += o.Origins
	s.OriginSends += o.OriginSends
	s.Relayed += o.Relayed
	s.Duplicates += o.Duplicates
	s.StallSkips += o.StallSkips
	s.StallDrops += o.StallDrops
}

// SendsPerBroadcast is the average first-hop fanout paid by a broadcast
// origin — the per-tx message-complexity witness. A full mesh pays exactly
// n-1; kadcast pays O(Fanout·log n).
func (s Stats) SendsPerBroadcast() float64 {
	if s.Origins == 0 {
		return 0
	}
	return float64(s.OriginSends) / float64(s.Origins)
}
