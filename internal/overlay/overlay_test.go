package overlay

import (
	"reflect"
	"testing"
	"time"

	"stabl/internal/simnet"
)

func nodeIDs(n int) []simnet.NodeID {
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	return ids
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k)
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %q, %v", k, got, err)
		}
	}
	if _, err := ParseKind("smallworld"); err == nil {
		t.Fatal("ParseKind accepted an unknown topology")
	} else {
		for _, k := range Kinds() {
			if !contains(err.Error(), k) {
				t.Errorf("unknown-topology error %q does not enumerate %q", err, k)
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
	if err := (Config{Fanout: 3}).Validate(); err == nil {
		t.Error("tuning without topology accepted")
	}
	if err := (Config{Topology: "mesh5"}).Validate(); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := (Config{Topology: KindKadcast, Fanout: -1}).Validate(); err == nil {
		t.Error("negative fanout accepted")
	}
}

// TestTopologyDeterminism: same (cfg, seed, ids) must produce identical
// adjacency and bucket views across constructions, independent of the input
// id order; a different seed must move kadcast/regular edges.
func TestTopologyDeterminism(t *testing.T) {
	ids := nodeIDs(64)
	shuffled := append([]simnet.NodeID(nil), ids...)
	for i := range shuffled { // fixed deterministic scramble
		j := (i*37 + 11) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	for _, kind := range Kinds() {
		cfg := Config{Topology: kind}
		a, err := New(cfg, 42, ids)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := New(cfg, 42, shuffled)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, id := range ids {
			if !reflect.DeepEqual(a.Neighbors(id), b.Neighbors(id)) {
				t.Fatalf("%s: adjacency of %v differs across constructions", kind, id)
			}
			ns := a.Neighbors(id)
			for i := 1; i < len(ns); i++ {
				if ns[i-1] >= ns[i] {
					t.Fatalf("%s: neighbors of %v not strictly ascending: %v", kind, id, ns)
				}
			}
			for _, p := range ns {
				if !containsID(a.Neighbors(p), id) {
					t.Fatalf("%s: adjacency not symmetric: %v -> %v", kind, id, p)
				}
			}
		}
		if kind == KindRing {
			continue // positional: the seed does not participate
		}
		c, err := New(cfg, 43, ids)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		moved := false
		for _, id := range ids {
			if !reflect.DeepEqual(a.Neighbors(id), c.Neighbors(id)) {
				moved = true
				break
			}
		}
		if !moved {
			t.Errorf("%s: seed change left every edge in place", kind)
		}
	}
}

func containsID(ids []simnet.NodeID, id simnet.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// fakeSender records sends for in-memory relay simulation.
type fakeSender struct {
	id   simnet.NodeID
	now  time.Duration
	sent []fakeMsg
}

type fakeMsg struct {
	to      simnet.NodeID
	payload any
}

func (f *fakeSender) ID() simnet.NodeID  { return f.id }
func (f *fakeSender) Now() time.Duration { return f.now }
func (f *fakeSender) Send(to simnet.NodeID, payload any) {
	f.sent = append(f.sent, fakeMsg{to, payload})
}

// deliverAll runs a broadcast from origin to quiescence over in-memory
// routers and returns which nodes received the payload (origin included)
// plus the total number of envelope sends.
func deliverAll(t *testing.T, topo *Topology, routers map[simnet.NodeID]*Router, origin simnet.NodeID) (received map[simnet.NodeID]bool, sends int) {
	t.Helper()
	received = map[simnet.NodeID]bool{origin: true}
	senders := map[simnet.NodeID]*fakeSender{}
	for _, id := range topo.Nodes() {
		senders[id] = &fakeSender{id: id}
	}
	routers[origin].Broadcast(senders[origin], "payload")
	type inflight struct {
		from simnet.NodeID
		msg  fakeMsg
	}
	var queue []inflight
	drain := func(id simnet.NodeID) {
		s := senders[id]
		for _, m := range s.sent {
			queue = append(queue, inflight{from: id, msg: m})
		}
		s.sent = nil
	}
	drain(origin)
	for len(queue) > 0 {
		next := queue[0]
		queue = queue[1:]
		sends++
		to := next.msg.to
		inner, ok := routers[to].Unwrap(senders[to], next.from, next.msg.payload)
		if ok {
			if inner != "payload" {
				t.Fatalf("node %v received %v", to, inner)
			}
			received[to] = true
		}
		drain(to)
	}
	return received, sends
}

// TestBroadcastCoverage: every topology must deliver a broadcast to every
// node, and kadcast's origin fanout must be O(Fanout·log n), not O(n).
func TestBroadcastCoverage(t *testing.T) {
	const n = 200
	ids := nodeIDs(n)
	for _, kind := range Kinds() {
		topo, err := New(Config{Topology: kind}, 42, ids)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		routers := map[simnet.NodeID]*Router{}
		for _, id := range ids {
			routers[id] = NewRouter(topo, id)
		}
		for _, origin := range []simnet.NodeID{0, 7, n - 1} {
			received, _ := deliverAll(t, topo, routers, origin)
			if len(received) != n {
				t.Errorf("%s: broadcast from %v reached %d of %d nodes", kind, origin, len(received), n)
			}
		}
		if kind == KindKadcast {
			st := Stats{}
			for _, id := range ids {
				st.Add(routers[id].Stats())
			}
			// 3 origins at n=200: log2(200) ≈ 7.6 buckets × fanout 4 ≈ 30
			// sends each; the mesh would pay 199.
			if per := st.SendsPerBroadcast(); per >= n/2 {
				t.Errorf("kadcast origin fanout %.1f is O(n), want O(fanout·log n)", per)
			}
		}
	}
}

// TestDupemapEviction: the cache never exceeds its capacity and evicts FIFO.
func TestDupemapEviction(t *testing.T) {
	d := newDupemap(8)
	for i := 0; i < 100; i++ {
		if !d.add(dupeKey{origin: 1, seq: uint64(i)}) {
			t.Fatalf("fresh key %d reported duplicate", i)
		}
		if d.size() > 8 {
			t.Fatalf("dupemap grew to %d entries past cap 8", d.size())
		}
	}
	// Entries 92..99 remain; 91 and older were evicted and re-admit.
	if d.add(dupeKey{origin: 1, seq: 99}) {
		t.Error("recent key evicted too early")
	}
	if !d.add(dupeKey{origin: 1, seq: 0}) {
		t.Error("evicted key still reported duplicate")
	}
}

// TestStallSkip: a peer charged past the threshold is skipped
// deterministically and drains back after enough virtual time.
func TestStallSkip(t *testing.T) {
	ids := nodeIDs(4)
	topo, err := New(Config{Topology: KindRing, Fanout: 1, StallThreshold: 3, DrainRate: 1}, 42, ids)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(topo, 0)
	s := &fakeSender{id: 0}
	for i := 0; i < 5; i++ {
		r.Broadcast(s, i)
	}
	if r.Stats().StallSkips == 0 {
		t.Fatal("no stall skips after 5 instant broadcasts at threshold 3")
	}
	skipsBefore := r.Stats().StallSkips
	s.now = 10 * time.Second // drains everything at 1/s
	r.Broadcast(s, "later")
	if r.Stats().StallSkips != skipsBefore {
		t.Error("drained peers still skipped")
	}
}

// TestRouterSnapshotRoundtrip: Snapshot/Restore must reproduce sequence
// numbers, duplicate suppression and stats exactly.
func TestRouterSnapshotRoundtrip(t *testing.T) {
	ids := nodeIDs(16)
	topo, err := New(Config{Topology: KindKadcast}, 42, ids)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(topo, 3)
	s := &fakeSender{id: 3}
	r.Broadcast(s, "a")
	r.Unwrap(s, 5, Envelope{Origin: 5, Seq: 1, Height: maxHeight, Payload: "b"})
	st := r.Snapshot()
	// Diverge, then restore.
	r.Broadcast(s, "c")
	r.Unwrap(s, 5, Envelope{Origin: 5, Seq: 2, Height: maxHeight, Payload: "d"})
	r.Restore(st)
	if r.seq != 1 {
		t.Errorf("seq = %d after restore, want 1", r.seq)
	}
	if _, ok := r.Unwrap(s, 5, Envelope{Origin: 5, Seq: 1, Payload: "b"}); ok {
		t.Error("restored dupemap forgot a pre-snapshot envelope")
	}
	if _, ok := r.Unwrap(s, 5, Envelope{Origin: 5, Seq: 2, Payload: "d"}); !ok {
		t.Error("restored dupemap remembers a post-snapshot envelope")
	}
	if got := r.Stats(); got.Duplicates != st.stats.Duplicates+1 {
		t.Errorf("stats not restored: %+v vs snapshot %+v", got, st.stats)
	}
}

// TestRouterResetKeepsSeq: reboot clears the dupemap but never rewinds the
// sequence counter — peers may still hold the old keys.
func TestRouterResetKeepsSeq(t *testing.T) {
	ids := nodeIDs(8)
	topo, err := New(Config{Topology: KindRegular}, 42, ids)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(topo, 0)
	s := &fakeSender{id: 0}
	r.Broadcast(s, "x")
	r.Broadcast(s, "y")
	r.Reset()
	if r.seq != 2 {
		t.Errorf("seq = %d after reset, want 2", r.seq)
	}
	if r.dupe.size() != 0 {
		t.Errorf("dupemap kept %d entries across reset", r.dupe.size())
	}
}
