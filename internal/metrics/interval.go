package metrics

import (
	"sort"
	"time"
)

// ObsStats summarizes one interval of a named observation stream.
type ObsStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// IntervalRow is one fixed-width slice of the run: counter sums, last gauge
// values (carried forward through empty intervals), observation summaries
// and per-kind consensus event counts. Start is the interval's inclusive
// left edge; a sample at exactly Start belongs to this row, so an event at
// k*interval lands in row k. Samples at or past the end of the run clamp
// into the final row.
type IntervalRow struct {
	Index    int
	Start    time.Duration
	Counters map[string]float64
	Gauges   map[string]float64
	Obs      map[string]ObsStats
	Events   map[string]int
}

// Intervals aggregates the raw streams into rows covering [0, Duration).
// With no run duration set, the rows extend to the latest recorded sample;
// a recorder with no data yields no rows. The output depends only on what
// was recorded, never on map iteration order.
func (r *Recorder) Intervals() []IntervalRow {
	n := r.intervalCount()
	if n == 0 {
		return nil
	}
	rows := make([]IntervalRow, n)
	for i := range rows {
		rows[i] = IntervalRow{
			Index:    i,
			Start:    time.Duration(i) * r.interval,
			Counters: make(map[string]float64),
			Gauges:   make(map[string]float64),
			Obs:      make(map[string]ObsStats),
			Events:   make(map[string]int),
		}
	}
	slot := func(at time.Duration) int {
		if at < 0 {
			return 0
		}
		i := int(at / r.interval)
		if i >= n {
			i = n - 1
		}
		return i
	}

	for _, name := range sortedKeys(r.counters) {
		for _, s := range r.counters[name] {
			rows[slot(s.At)].Counters[name] += s.Value
		}
	}
	// Gauges: the last sample of an interval wins; intervals without a
	// sample inherit the previous interval's level — a node halted for a
	// whole interval still shows its last known depth, not zero.
	for _, name := range sortedKeys(r.gauges) {
		last := make([]*float64, n)
		for _, s := range r.gauges[name] {
			v := s.Value
			last[slot(s.At)] = &v
		}
		carry := 0.0
		for i := range rows {
			if last[i] != nil {
				carry = *last[i]
			}
			rows[i].Gauges[name] = carry
		}
	}
	for _, name := range sortedKeys(r.obs) {
		for _, s := range r.obs[name] {
			row := &rows[slot(s.At)]
			st := row.Obs[name]
			if st.Count == 0 || s.Value < st.Min {
				st.Min = s.Value
			}
			if st.Count == 0 || s.Value > st.Max {
				st.Max = s.Value
			}
			st.Mean = (st.Mean*float64(st.Count) + s.Value) / float64(st.Count+1)
			st.Count++
			row.Obs[name] = st
		}
	}
	for _, ev := range r.events {
		rows[slot(ev.At)].Events[ev.Kind.String()]++
	}
	return rows
}

// intervalCount is ceil(Duration/interval), or enough intervals to cover
// the latest sample when no duration was set.
func (r *Recorder) intervalCount() int {
	d := r.run.Duration
	if d > 0 {
		return int((d + r.interval - 1) / r.interval)
	}
	max := time.Duration(-1)
	for _, samples := range r.counters {
		max = maxSampleAt(max, samples)
	}
	for _, samples := range r.gauges {
		max = maxSampleAt(max, samples)
	}
	for _, samples := range r.obs {
		max = maxSampleAt(max, samples)
	}
	for _, ev := range r.events {
		if ev.At > max {
			max = ev.At
		}
	}
	if max < 0 {
		return 0
	}
	return int(max/r.interval) + 1
}

func maxSampleAt(max time.Duration, samples []Sample) time.Duration {
	for _, s := range samples {
		if s.At > max {
			max = s.At
		}
	}
	return max
}

// CounterNames, GaugeNames and ObsNames return the recorded metric names in
// sorted order — the column order of every export.
func (r *Recorder) CounterNames() []string { return sortedKeys(r.counters) }

// GaugeNames returns the recorded gauge names in sorted order.
func (r *Recorder) GaugeNames() []string { return sortedKeys(r.gauges) }

// ObsNames returns the recorded observation names in sorted order.
func (r *Recorder) ObsNames() []string { return sortedKeys(r.obs) }

func sortedKeys(m map[string][]Sample) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
