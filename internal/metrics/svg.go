package metrics

import (
	"fmt"

	"stabl/internal/plot"
	"stabl/internal/simnet"
)

// TimelineSVG renders the run as a timeline chart: mean commit latency per
// interval (with the interval commit rate as a second series), dashed
// vertical markers at fault injection/recovery, and event lanes for leader
// changes, timeouts and node halts/reboots. Lane markers are deduplicated
// per (kind, round, leader) so ten validators observing one view change
// draw one tick. Deterministic for a deterministic run.
func TimelineSVG(r *Recorder, title string) string {
	rows := r.Intervals()
	intervalSec := r.interval.Seconds()
	latency := plot.Series{Name: "commit latency (s, mean)"}
	rate := plot.Series{Name: "commits/s", Dashed: true, Color: "#7f7f7f"}
	for _, row := range rows {
		x := row.Start.Seconds() + intervalSec/2
		if st, ok := row.Obs["commit_latency"]; ok && st.Count > 0 {
			latency.Points = append(latency.Points, plot.Point{X: x, Y: st.Mean})
		}
		rate.Points = append(rate.Points, plot.Point{X: x, Y: row.Counters["tx_committed"] / intervalSec})
	}

	chart := plot.Chart{
		Title:  title,
		XLabel: "virtual time (s)",
		YLabel: "commit latency (s) / commits/s",
		Width:  860,
		Height: 420,
		Series: []plot.Series{latency, rate},
		Lanes: []plot.Lane{
			{Name: "leader", Color: "#9467bd", Xs: dedupEventXs(r.Events(), EventLeaderChange)},
			{Name: "timeout", Color: "#ff7f0e", Xs: dedupEventXs(r.Events(), EventTimeout)},
			{Name: "net", Color: "#d62728", Xs: traceXs(r.Trace())},
		},
	}
	for _, ev := range r.Events() {
		switch ev.Kind {
		case EventFaultInject:
			chart.VLines = append(chart.VLines, plot.VLine{X: ev.At.Seconds(), Label: "inject", Color: "#d62728"})
		case EventFaultRecover:
			chart.VLines = append(chart.VLines, plot.VLine{X: ev.At.Seconds(), Label: "recover", Color: "#2ca02c"})
		case EventPhase:
			chart.VLines = append(chart.VLines, plot.VLine{X: ev.At.Seconds(), Label: ev.Detail, Color: "#9467bd"})
		}
	}
	if info := r.Run(); info.Duration > 0 {
		// Anchor the x-axis to the full run even when commits stop early
		// (invisible markers at both ends only widen the bounds).
		chart.VLines = append(chart.VLines,
			plot.VLine{X: 0, Color: "#ffffff"},
			plot.VLine{X: info.Duration.Seconds(), Color: "#ffffff"})
	}
	return chart.SVG()
}

// dedupEventXs returns the times of the first event per (round, leader)
// coordinate of the given kind, in emission order.
func dedupEventXs(events []Event, kind EventKind) []float64 {
	seen := make(map[string]bool)
	var xs []float64
	for _, ev := range events {
		if ev.Kind != kind {
			continue
		}
		key := fmt.Sprintf("%d/%d", ev.Round, int(ev.Leader))
		if seen[key] {
			continue
		}
		seen[key] = true
		xs = append(xs, ev.At.Seconds())
	}
	return xs
}

// traceXs returns the times of node halts and (re)starts — the lifecycle
// transitions worth a timeline tick; connection churn would flood the lane.
func traceXs(trace []simnet.TraceEvent) []float64 {
	var xs []float64
	for _, ev := range trace {
		switch ev.Kind {
		case simnet.TraceNodeHalt, simnet.TraceNodeStart,
			simnet.TracePartition, simnet.TraceHeal, simnet.TraceDelay:
			xs = append(xs, ev.At.Seconds())
		}
	}
	return xs
}
