package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stabl/internal/simnet"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder(0)
	if r.Interval() != DefaultInterval {
		t.Fatalf("interval = %v, want %v", r.Interval(), DefaultInterval)
	}
	if rows := r.Intervals(); rows != nil {
		t.Fatalf("empty recorder yielded %d rows", len(rows))
	}
	if tl := r.Timeline(); len(tl) != 0 {
		t.Fatalf("empty recorder yielded %d timeline entries", len(tl))
	}
	var jsonl, csv bytes.Buffer
	if err := r.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(jsonl.String(), "\n"); lines != 1 {
		t.Fatalf("empty JSONL = %d lines (want just the run header):\n%s", lines, jsonl.String())
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 1 {
		t.Fatalf("empty CSV = %d lines (want just the header):\n%s", lines, csv.String())
	}
}

func TestEmptyRunWithDurationYieldsZeroRows(t *testing.T) {
	r := NewRecorder(sec(5))
	r.SetRun(RunInfo{Duration: sec(12)}) // ceil(12/5) = 3 rows
	rows := r.Intervals()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if len(row.Counters) != 0 || len(row.Gauges) != 0 || len(row.Obs) != 0 || len(row.Events) != 0 {
			t.Fatalf("row %d not empty: %+v", row.Index, row)
		}
	}
}

func TestBoundarySamplesLandInTheirInterval(t *testing.T) {
	r := NewRecorder(sec(5))
	r.SetRun(RunInfo{Duration: sec(15)})
	r.Count(sec(0), "c", 1)  // left edge of row 0
	r.Count(sec(5), "c", 1)  // exactly k*interval -> row k
	r.Count(sec(15), "c", 1) // at the run's end: clamps into the last row
	r.Count(sec(99), "c", 1) // past the end: clamps too
	r.Count(-sec(1), "c", 1) // before the start: clamps into row 0
	r.AddEvent(Event{At: sec(10), Kind: EventCommit})

	rows := r.Intervals()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	want := []float64{2, 1, 2}
	for i, w := range want {
		if got := rows[i].Counters["c"]; got != w {
			t.Errorf("row %d counter = %g, want %g", i, got, w)
		}
	}
	if rows[2].Events["commit"] != 1 || rows[1].Events["commit"] != 0 {
		t.Errorf("boundary event at 10s should land in row 2: %v / %v", rows[1].Events, rows[2].Events)
	}
}

func TestGaugeCarryForwardThroughHaltedInterval(t *testing.T) {
	r := NewRecorder(sec(5))
	r.SetRun(RunInfo{Duration: sec(20)})
	r.Gauge(sec(1), "depth", 7)
	r.Gauge(sec(2), "depth", 9) // last sample of the interval wins
	// Intervals 1 and 2 have no samples: the node was halted. Its last
	// known level must persist, not drop to zero.
	r.Gauge(sec(16), "depth", 3)

	rows := r.Intervals()
	want := []float64{9, 9, 9, 3}
	for i, w := range want {
		if got := rows[i].Gauges["depth"]; got != w {
			t.Errorf("row %d gauge = %g, want %g", i, got, w)
		}
	}
}

func TestObsStats(t *testing.T) {
	r := NewRecorder(sec(5))
	r.SetRun(RunInfo{Duration: sec(5)})
	for _, v := range []float64{2, 4, 6} {
		r.Observe(sec(1), "lat", v)
	}
	st := r.Intervals()[0].Obs["lat"]
	if st.Count != 3 || st.Mean != 4 || st.Min != 2 || st.Max != 6 {
		t.Fatalf("stats = %+v, want count 3 mean 4 min 2 max 6", st)
	}
}

func TestCounterTotal(t *testing.T) {
	r := NewRecorder(0)
	r.Count(sec(1), "tx", 2)
	r.Count(sec(7), "tx", 3)
	if got := r.CounterTotal("tx"); got != 5 {
		t.Fatalf("total = %g, want 5", got)
	}
	if got := r.CounterTotal("missing"); got != 0 {
		t.Fatalf("missing total = %g, want 0", got)
	}
}

func TestIntervalCountWithoutDuration(t *testing.T) {
	r := NewRecorder(sec(5))
	r.Count(sec(11), "c", 1) // latest sample at 11s -> 3 rows
	if rows := r.Intervals(); len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestTimelineMergesAndSortsStably(t *testing.T) {
	r := NewRecorder(sec(5))
	r.AddEvent(Event{At: sec(3), Kind: EventRoundStart, Node: 1, Round: 4, Leader: 2})
	r.AddEvent(Event{At: sec(1), Kind: EventCommit, Node: 0, Round: 3, Leader: 2})
	tracer := r.Tracer()
	tracer(simnet.TraceEvent{At: sec(3), Kind: simnet.TraceNodeHalt, Node: 5})
	tracer(simnet.TraceEvent{At: sec(2), Kind: simnet.TraceNodeStart, Node: 6})

	tl := r.Timeline()
	if len(tl) != 4 {
		t.Fatalf("timeline = %d entries, want 4", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatalf("timeline out of order at %d: %v after %v", i, tl[i].At, tl[i-1].At)
		}
	}
	// Equal timestamps keep their construction order: protocol events are
	// added before the trace, so at t=3s the round-start precedes the halt.
	if tl[2].Source != SourceProtocol || tl[3].Source != SourceNet {
		t.Fatalf("stable merge broken: %+v then %+v", tl[2], tl[3])
	}
	if tl[0].Kind != "commit" || tl[0].Round != 3 || tl[0].Peer != 2 {
		t.Fatalf("protocol entry mapped wrong: %+v", tl[0])
	}
	if tl[1].Kind != simnet.TraceNodeStart.String() || tl[1].Round != -1 {
		t.Fatalf("net entry mapped wrong: %+v", tl[1])
	}
}

// populate fills a recorder the same way twice so export determinism can be
// checked against a fresh but identically-driven instance.
func populate(r *Recorder) {
	r.SetRun(RunInfo{
		System: "Stub", Seed: 7, Fault: "crash",
		Validators: 4, Clients: 2,
		InjectAt: sec(10), RecoverAt: sec(20), Duration: sec(30),
	})
	for i := 0; i < 60; i++ {
		at := time.Duration(i) * sec(30) / 60
		r.Count(at, "tx_committed", float64(1+i%3))
		r.Gauge(at, "mempool_depth", float64(i%7))
		r.Observe(at, "commit_latency", 0.1*float64(i%5)+0.2)
		if i%10 == 0 {
			r.AddEvent(Event{At: at, Kind: EventRoundStart, Node: simnet.NodeID(i % 4), Round: i / 10, Leader: simnet.NodeID(i % 4)})
		}
		if i%20 == 5 {
			r.AddEvent(Event{At: at, Kind: EventTimeout, Node: 1, Round: i / 10, Leader: 2})
		}
	}
	r.AddEvent(Event{At: sec(10), Kind: EventFaultInject, Node: -1, Round: -1, Leader: -1, Detail: "crash f=1"})
	r.AddEvent(Event{At: sec(20), Kind: EventFaultRecover, Node: -1, Round: -1, Leader: -1})
	tracer := r.Tracer()
	tracer(simnet.TraceEvent{At: sec(10), Kind: simnet.TraceNodeHalt, Node: 3})
	tracer(simnet.TraceEvent{At: sec(20), Kind: simnet.TraceNodeStart, Node: 3})
}

func TestExportsDeterministic(t *testing.T) {
	dump := func() (string, string, string) {
		r := NewRecorder(sec(5))
		populate(r)
		var jsonl, csv bytes.Buffer
		if err := r.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return jsonl.String(), csv.String(), TimelineSVG(r, "t")
	}
	j1, c1, s1 := dump()
	j2, c2, s2 := dump()
	if j1 != j2 {
		t.Error("JSONL not byte-identical across identical recorders")
	}
	if c1 != c2 {
		t.Error("CSV not byte-identical across identical recorders")
	}
	if s1 != s2 {
		t.Error("SVG not byte-identical across identical recorders")
	}
	if !strings.HasPrefix(s1, "<svg") {
		t.Errorf("timeline SVG malformed: %.60q", s1)
	}
	for _, want := range []string{"leader", "timeout", "net", "inject", "recover"} {
		if !strings.Contains(s1, want) {
			t.Errorf("timeline SVG missing %q", want)
		}
	}
}

func TestCSVHeaderShape(t *testing.T) {
	r := NewRecorder(sec(5))
	populate(r)
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{
		"interval", "start_sec", "tx_committed", "mempool_depth",
		"commit_latency_count", "commit_latency_mean",
		"events_round-start", "events_fault-recover",
	} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header missing %q: %s", col, header)
		}
	}
	lines := strings.Count(strings.TrimRight(csv.String(), "\n"), "\n")
	if lines != 6 { // header + ceil(30/5) rows
		t.Errorf("CSV rows = %d, want 6", lines)
	}
}
