package metrics

import (
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// recorderState is a Recorder checkpoint.
type recorderState struct {
	run      RunInfo
	counters map[string][]Sample
	gauges   map[string][]Sample
	obs      map[string][]Sample
	events   []Event
	trace    []simnet.TraceEvent
}

var _ snapshot.Forkable = (*Recorder)(nil)

func copySeries(src map[string][]Sample) map[string][]Sample {
	out := make(map[string][]Sample, len(src))
	for name, samples := range src {
		out[name] = append([]Sample(nil), samples...)
	}
	return out
}

// Snapshot captures every recorded series, event and trace entry.
func (r *Recorder) Snapshot() snapshot.State {
	return &recorderState{
		run:      r.run,
		counters: copySeries(r.counters),
		gauges:   copySeries(r.gauges),
		obs:      copySeries(r.obs),
		events:   append([]Event(nil), r.events...),
		trace:    append([]simnet.TraceEvent(nil), r.trace...),
	}
}

// Restore rewinds the recorder to a state captured by Snapshot.
func (r *Recorder) Restore(state snapshot.State) {
	st, ok := state.(*recorderState)
	if !ok {
		panic("metrics: Recorder.Restore on foreign state")
	}
	r.run = st.run
	r.counters = copySeries(st.counters)
	r.gauges = copySeries(st.gauges)
	r.obs = copySeries(st.obs)
	r.events = append(r.events[:0], st.events...)
	r.trace = append(r.trace[:0], st.trace...)
}

// ReplaceHeadEvents swaps the first n recorded events for evs, keeping the
// rest. Adaptive campaigns use it to re-stamp a cloned recorder's
// run-identity annotations (written before the checkpoint, for the family
// representative) with the steered member's own, so the clone is
// byte-identical to a from-scratch run of that member.
func (r *Recorder) ReplaceHeadEvents(n int, evs []Event) {
	if n > len(r.events) {
		panic("metrics: ReplaceHeadEvents beyond recorded events")
	}
	r.events = append(append([]Event(nil), evs...), r.events[n:]...)
}

// Clone returns an independent deep copy of the recorder. Adaptive campaigns
// hand clones to result callbacks because the live recorder is about to be
// rewound for the next continuation.
func (r *Recorder) Clone() *Recorder {
	return &Recorder{
		interval: r.interval,
		run:      r.run,
		counters: copySeries(r.counters),
		gauges:   copySeries(r.gauges),
		obs:      copySeries(r.obs),
		events:   append([]Event(nil), r.events...),
		trace:    append([]simnet.TraceEvent(nil), r.trace...),
	}
}
