package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonRun heads the JSONL dump.
type jsonRun struct {
	Type        string  `json:"type"`
	System      string  `json:"system,omitempty"`
	Seed        int64   `json:"seed"`
	Fault       string  `json:"fault,omitempty"`
	Validators  int     `json:"validators"`
	Clients     int     `json:"clients"`
	InjectSec   float64 `json:"injectSec,omitempty"`
	RecoverSec  float64 `json:"recoverSec,omitempty"`
	DurationSec float64 `json:"durationSec"`
	IntervalSec float64 `json:"intervalSec"`
}

type jsonTotal struct {
	Type  string  `json:"type"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type jsonInterval struct {
	Type     string              `json:"type"`
	Index    int                 `json:"index"`
	StartSec float64             `json:"startSec"`
	Counters map[string]float64  `json:"counters,omitempty"`
	Gauges   map[string]float64  `json:"gauges,omitempty"`
	Obs      map[string]ObsStats `json:"obs,omitempty"`
	Events   map[string]int      `json:"events,omitempty"`
}

type jsonTimeline struct {
	Type   string  `json:"type"`
	TSec   float64 `json:"tSec"`
	Source string  `json:"source"`
	Kind   string  `json:"kind"`
	Node   int     `json:"node"`
	Peer   int     `json:"peer"`
	Round  int     `json:"round"`
	Detail string  `json:"detail,omitempty"`
}

// WriteJSONL dumps the run as JSON Lines: one run header, the counter
// totals, one line per interval row and one line per timeline entry.
// Objects keep their maps — encoding/json sorts map keys — and every
// sequence follows a deterministic order, so the dump is byte-identical
// across repeated runs of the same seed.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	info := r.run
	if err := enc.Encode(jsonRun{
		Type:        "run",
		System:      info.System,
		Seed:        info.Seed,
		Fault:       info.Fault,
		Validators:  info.Validators,
		Clients:     info.Clients,
		InjectSec:   info.InjectAt.Seconds(),
		RecoverSec:  info.RecoverAt.Seconds(),
		DurationSec: info.Duration.Seconds(),
		IntervalSec: r.interval.Seconds(),
	}); err != nil {
		return err
	}
	for _, name := range r.CounterNames() {
		if err := enc.Encode(jsonTotal{Type: "total", Name: name, Value: r.CounterTotal(name)}); err != nil {
			return err
		}
	}
	for _, row := range r.Intervals() {
		if err := enc.Encode(jsonInterval{
			Type:     "interval",
			Index:    row.Index,
			StartSec: row.Start.Seconds(),
			Counters: row.Counters,
			Gauges:   row.Gauges,
			Obs:      row.Obs,
			Events:   row.Events,
		}); err != nil {
			return err
		}
	}
	for _, e := range r.Timeline() {
		if err := enc.Encode(jsonTimeline{
			Type:   "timeline",
			TSec:   e.At.Seconds(),
			Source: e.Source,
			Kind:   e.Kind,
			Node:   int(e.Node),
			Peer:   int(e.Peer),
			Round:  e.Round,
			Detail: e.Detail,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the interval rows as CSV: one row per interval, columns
// sorted by metric name (counters, then gauges, then observation
// count/mean/min/max, then the consensus event kinds). Deterministic for a
// deterministic run.
func (r *Recorder) WriteCSV(w io.Writer) error {
	counters := r.CounterNames()
	gauges := r.GaugeNames()
	obs := r.ObsNames()
	kinds := []EventKind{
		EventRoundStart, EventCommit, EventTimeout,
		EventLeaderChange, EventFaultInject, EventFaultRecover,
	}

	header := []string{"interval", "start_sec"}
	header = append(header, counters...)
	header = append(header, gauges...)
	for _, name := range obs {
		header = append(header,
			name+"_count", name+"_mean", name+"_min", name+"_max")
	}
	for _, k := range kinds {
		header = append(header, "events_"+k.String())
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Intervals() {
		rec := []string{
			strconv.Itoa(row.Index),
			formatFloat(row.Start.Seconds()),
		}
		for _, name := range counters {
			rec = append(rec, formatFloat(row.Counters[name]))
		}
		for _, name := range gauges {
			rec = append(rec, formatFloat(row.Gauges[name]))
		}
		for _, name := range obs {
			st := row.Obs[name]
			rec = append(rec, strconv.Itoa(st.Count),
				formatFloat(st.Mean), formatFloat(st.Min), formatFloat(st.Max))
		}
		for _, k := range kinds {
			rec = append(rec, strconv.Itoa(row.Events[k.String()]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
