package metrics

import (
	"fmt"
	"sort"
	"time"

	"stabl/internal/simnet"
)

// Timeline entry sources.
const (
	// SourceProtocol marks an entry emitted by a chain model or the
	// harness (a consensus Event).
	SourceProtocol = "protocol"
	// SourceNet marks an entry captured from the simnet lifecycle trace.
	SourceNet = "net"
)

// TimelineEntry is one row of the merged run timeline: either a protocol
// consensus event or a network lifecycle transition, normalized onto a
// shared shape.
type TimelineEntry struct {
	At     time.Duration
	Source string
	Kind   string
	Node   simnet.NodeID
	// Peer is the second endpoint of a connection event; for protocol
	// entries it carries the round's leader (-1 when not applicable).
	Peer   simnet.NodeID
	Round  int
	Detail string
}

// String renders the entry as one log line.
func (e TimelineEntry) String() string {
	extra := ""
	if e.Source == SourceProtocol && e.Round >= 0 {
		extra = fmt.Sprintf(" round=%d", e.Round)
	}
	return fmt.Sprintf("%8.1fs %-8s %-13s %v%s %s", e.At.Seconds(), e.Source, e.Kind, e.Node, extra, e.Detail)
}

// Timeline merges the protocol events with the captured network trace into
// one sequence sorted by virtual time. The sort is stable, so entries that
// share a timestamp keep their emission order (protocol before net at exact
// ties only if emitted that way); the result is deterministic for a
// deterministic run.
func (r *Recorder) Timeline() []TimelineEntry {
	out := make([]TimelineEntry, 0, len(r.events)+len(r.trace))
	for _, ev := range r.events {
		out = append(out, TimelineEntry{
			At:     ev.At,
			Source: SourceProtocol,
			Kind:   ev.Kind.String(),
			Node:   ev.Node,
			Peer:   ev.Leader,
			Round:  ev.Round,
			Detail: ev.Detail,
		})
	}
	for _, ev := range r.trace {
		out = append(out, TimelineEntry{
			At:     ev.At,
			Source: SourceNet,
			Kind:   ev.Kind.String(),
			Node:   ev.Node,
			Peer:   ev.Peer,
			Round:  -1,
			Detail: ev.Detail,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
