// Package metrics is the deterministic virtual-time instrumentation layer
// of the STABL reproduction. A Recorder collects counters (tx commits,
// blocks), gauges (mempool depth, client backlog, chain height) and latency
// observations keyed by the simulated clock, plus the protocol-level
// consensus events (round start, commit, timeout, leader change) that the
// chain models emit and the network lifecycle trace the simnet produces.
// The raw streams aggregate into fixed-width interval rows (Intervals), a
// merged run Timeline, JSONL/CSV dumps (WriteJSONL, WriteCSV) and an SVG
// timeline (TimelineSVG).
//
// Determinism: a Recorder adds no randomness and draws nothing from the
// simulation RNG, so attaching one never changes what a run measures, and
// every export is byte-identical across repeated runs of the same seed.
// Concurrency: a Recorder instruments exactly one single-threaded
// simulation run and is NOT safe for concurrent use; parallel campaigns
// attach one fresh Recorder per cell.
package metrics

import (
	"fmt"
	"time"

	"stabl/internal/simnet"
)

// DefaultInterval is the aggregation interval used when NewRecorder is
// given zero.
const DefaultInterval = 5 * time.Second

// EventKind classifies a protocol-level consensus event.
type EventKind int

// Consensus event kinds. The first four are emitted by the chain models;
// the fault markers are annotations added by the experiment harness.
const (
	// EventRoundStart marks a node entering a consensus round/slot.
	EventRoundStart EventKind = iota + 1
	// EventCommit marks a node committing the block of a round/slot.
	EventCommit
	// EventTimeout marks a round-level timer expiring without progress
	// (pacemaker timeout, stuck round, inconclusive poll, silent
	// coordinator, empty leader window).
	EventTimeout
	// EventLeaderChange marks the responsibility for a round moving to a
	// different node (view change, proposer fallback, leader-window
	// rotation, preference flip, sub-round coordinator rotation).
	EventLeaderChange
	// EventFaultInject annotates the experiment's fault injection time.
	EventFaultInject
	// EventFaultRecover annotates the experiment's fault recovery time.
	EventFaultRecover
	// EventPhase annotates one step of a scenario timeline (crash wave,
	// flap cycle, degradation rule install/clear — see internal/scenario).
	EventPhase
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRoundStart:
		return "round-start"
	case EventCommit:
		return "commit"
	case EventTimeout:
		return "timeout"
	case EventLeaderChange:
		return "leader-change"
	case EventFaultInject:
		return "fault-inject"
	case EventFaultRecover:
		return "fault-recover"
	case EventPhase:
		return "phase"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one protocol-level consensus event. Node is the observer that
// emitted it (-1 for harness annotations); Leader is the node responsible
// for the round at that moment, when the protocol has such a notion.
type Event struct {
	At     time.Duration
	Kind   EventKind
	Node   simnet.NodeID
	Round  int
	Leader simnet.NodeID
	Detail string
}

// Sample is one raw (time, value) measurement.
type Sample struct {
	At    time.Duration
	Value float64
}

// RunInfo identifies the run a Recorder instrumented; it heads every
// export.
type RunInfo struct {
	System     string
	Seed       int64
	Fault      string
	Validators int
	Clients    int
	InjectAt   time.Duration
	RecoverAt  time.Duration
	Duration   time.Duration
}

// Recorder accumulates one run's instrumentation. The zero value is not
// usable; construct with NewRecorder.
type Recorder struct {
	interval time.Duration
	run      RunInfo
	counters map[string][]Sample
	gauges   map[string][]Sample
	obs      map[string][]Sample
	events   []Event
	trace    []simnet.TraceEvent
}

// NewRecorder creates a Recorder aggregating at the given interval
// (DefaultInterval when zero or negative).
func NewRecorder(interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Recorder{
		interval: interval,
		counters: make(map[string][]Sample),
		gauges:   make(map[string][]Sample),
		obs:      make(map[string][]Sample),
	}
}

// Interval returns the aggregation interval.
func (r *Recorder) Interval() time.Duration { return r.interval }

// SetRun records the run's identity and duration; the duration bounds the
// interval rows.
func (r *Recorder) SetRun(info RunInfo) { r.run = info }

// Run returns the recorded run identity.
func (r *Recorder) Run() RunInfo { return r.run }

// Count adds delta to a named counter at virtual time at.
func (r *Recorder) Count(at time.Duration, name string, delta float64) {
	r.counters[name] = append(r.counters[name], Sample{At: at, Value: delta})
}

// Gauge records the current value of a named level at virtual time at.
// Within an interval the last sample wins; intervals without a sample carry
// the previous value forward (a halted node's last known level persists).
func (r *Recorder) Gauge(at time.Duration, name string, v float64) {
	r.gauges[name] = append(r.gauges[name], Sample{At: at, Value: v})
}

// Observe records one named distribution sample (e.g. a commit latency in
// seconds) at virtual time at.
func (r *Recorder) Observe(at time.Duration, name string, v float64) {
	r.obs[name] = append(r.obs[name], Sample{At: at, Value: v})
}

// AddEvent appends a protocol event. Events need not arrive in time order;
// aggregation and the Timeline sort stably by time.
func (r *Recorder) AddEvent(ev Event) { r.events = append(r.events, ev) }

// Events returns the protocol events in emission order. The slice is
// shared; callers must not modify it.
func (r *Recorder) Events() []Event { return r.events }

// CounterTotal sums every recorded delta of a counter.
func (r *Recorder) CounterTotal(name string) float64 {
	total := 0.0
	for _, s := range r.counters[name] {
		total += s.Value
	}
	return total
}

// Tracer returns a simnet.Tracer that captures the network lifecycle trace
// into the recorder, for merging into the Timeline.
func (r *Recorder) Tracer() simnet.Tracer {
	return func(ev simnet.TraceEvent) { r.trace = append(r.trace, ev) }
}

// Trace returns the captured network lifecycle events. The slice is
// shared; callers must not modify it.
func (r *Recorder) Trace() []simnet.TraceEvent { return r.trace }
