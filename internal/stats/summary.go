package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary condenses a latency distribution into the moments and quantiles
// reports care about. All fields are in the samples' unit (seconds for
// STABL latencies).
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	d := NewDist(samples)
	if d.Len() == 0 {
		return Summary{}
	}
	mean := d.Mean()
	var varsum float64
	for _, v := range d.sorted {
		varsum += (v - mean) * (v - mean)
	}
	return Summary{
		Count:  d.Len(),
		Mean:   mean,
		Stddev: math.Sqrt(varsum / float64(d.Len())),
		Min:    d.Min(),
		P50:    d.Quantile(0.50),
		P90:    d.Quantile(0.90),
		P95:    d.Quantile(0.95),
		P99:    d.Quantile(0.99),
		Max:    d.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-width binning of a sample set.
type Histogram struct {
	Width  float64 `json:"width"`
	Counts []int   `json:"counts"`
	Over   int     `json:"over"` // samples beyond the last bin
}

// NewHistogram bins samples into bins of the given width covering
// [0, width*bins); larger samples land in Over.
func NewHistogram(samples []float64, width float64, bins int) Histogram {
	if width <= 0 {
		width = 1
	}
	if bins <= 0 {
		bins = 1
	}
	h := Histogram{Width: width, Counts: make([]int, bins)}
	for _, v := range samples {
		if v < 0 {
			v = 0
		}
		i := int(v / width)
		if i >= bins {
			h.Over++
			continue
		}
		h.Counts[i]++
	}
	return h
}

// Total returns the number of binned samples, including overflow.
func (h Histogram) Total() int {
	total := h.Over
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// Render draws the histogram as fixed-width text rows.
func (h Histogram) Render(maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	peak := 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*maxWidth/peak)
		fmt.Fprintf(&b, "%8.2f-%8.2f %6d %s\n",
			float64(i)*h.Width, float64(i+1)*h.Width, c, bar)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%17s %6d\n", "overflow", h.Over)
	}
	return b.String()
}

// KolmogorovSmirnov returns the KS statistic between two sample sets: the
// largest vertical distance between their eCDFs. It complements the
// sensitivity score (an area) with a worst-point measure.
func KolmogorovSmirnov(a, b []float64) float64 {
	da, db := NewDist(a), NewDist(b)
	if da.Len() == 0 || db.Len() == 0 {
		return 0
	}
	max := 0.0
	for _, v := range da.sorted {
		if d := math.Abs(da.ECDF(v) - db.ECDF(v)); d > max {
			max = d
		}
	}
	for _, v := range db.sorted {
		if d := math.Abs(da.ECDF(v) - db.ECDF(v)); d > max {
			max = d
		}
	}
	return max
}
