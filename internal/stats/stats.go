// Package stats implements the measurement side of STABL: empirical CDFs,
// the empirical super-cumulative distribution, the sensitivity score
// (STABL §3), throughput time series and recovery-time estimation.
//
// Every function here is a pure computation over its inputs — no randomness,
// no clocks, no global state — so identical samples always produce identical
// scores, and values may be shared freely across goroutines once built
// (Dist and TimeSeries are immutable after construction).
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Dist is an immutable empirical distribution over float64 samples.
type Dist struct {
	sorted []float64
}

// NewDist copies and sorts samples into a distribution.
func NewDist(samples []float64) Dist {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return Dist{sorted: s}
}

// Len returns the sample count.
func (d Dist) Len() int { return len(d.sorted) }

// Min returns the smallest sample (0 if empty).
func (d Dist) Min() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest sample (0 if empty).
func (d Dist) Max() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Mean returns the arithmetic mean (0 if empty).
func (d Dist) Mean() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.sorted {
		sum += v
	}
	return sum / float64(len(d.sorted))
}

// Quantile returns the p-quantile for p in [0,1] using the nearest-rank
// method.
func (d Dist) Quantile(p float64) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return d.sorted[0]
	}
	if p >= 1 {
		return d.sorted[len(d.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(d.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.sorted[idx]
}

// ECDF evaluates the empirical CDF: the fraction of samples <= x.
func (d Dist) ECDF(x float64) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] > x })
	return float64(idx) / float64(len(d.sorted))
}

// Point is one (x, y) pair of an eCDF curve.
type Point struct {
	X float64
	Y float64
}

// Curve returns the full eCDF as a step curve, one point per distinct
// sample value; it is what Fig 1 plots.
func (d Dist) Curve() []Point {
	out := make([]Point, 0, len(d.sorted))
	for i, v := range d.sorted {
		if i+1 < len(d.sorted) && d.sorted[i+1] == v {
			continue
		}
		out = append(out, Point{X: v, Y: float64(i+1) / float64(len(d.sorted))})
	}
	return out
}

// SuperCumulative computes the empirical super-cumulative evaluated at the
// distribution's own maximum: S(b) = sum_{i=0..floor(b/step)} F(i*step),
// the discrete adaptation of S(x) = integral of F used by STABL. Both
// distributions of a sensitivity comparison must use the same step.
func (d Dist) SuperCumulative(step float64) float64 {
	return d.SuperCumulativeAt(d.Max(), step)
}

// SuperCumulativeAt evaluates the super-cumulative at x.
func (d Dist) SuperCumulativeAt(x, step float64) float64 {
	if len(d.sorted) == 0 || step <= 0 {
		return 0
	}
	n := int(math.Floor(x / step))
	var sum float64
	for i := 0; i <= n; i++ {
		sum += d.ECDF(float64(i) * step)
	}
	return sum
}

// Score is a sensitivity measurement.
type Score struct {
	// Value is |S1(b1) - S2(b2)| in grid-step units. Meaningless when
	// Infinite is set.
	Value float64
	// Infinite marks a liveness failure: the altered run stopped
	// committing transactions (STABL: "a blockchain that stops
	// committing transactions after a failure event has an infinite
	// sensitivity score").
	Infinite bool
	// Benefit reports that the altered environment improved on the
	// baseline (S2(b2) > S1(b1)); rendered as a striped bar in Fig 3.
	Benefit bool
	// Baseline and Altered are the two super-cumulative areas.
	Baseline float64
	Altered  float64
}

// String renders the score the way Fig 3 annotates bars.
func (s Score) String() string {
	if s.Infinite {
		return "inf"
	}
	if s.Benefit {
		return fmt.Sprintf("%.2f (benefit)", s.Value)
	}
	return fmt.Sprintf("%.2f", s.Value)
}

// Sensitivity computes the STABL sensitivity score between a baseline and an
// altered latency sample set, on a grid of the given step (same unit as the
// samples). An empty altered sample set yields an infinite score.
//
// The score is the absolute difference of the areas under the two eCDFs
// (the pink area of the paper's Fig 1): both super-cumulatives are
// evaluated on a common grid up to max(b1, b2). Evaluating each at its own
// maximum, as the paper's formula literally reads, would make the metric
// hypersensitive to a single outlier, contradicting the paper's stated
// outlier-resilience property; the common-grid area difference satisfies
// all four properties listed in §3.
func Sensitivity(baseline, altered []float64, step float64) Score {
	if len(altered) == 0 {
		return Score{Infinite: true}
	}
	d1 := NewDist(baseline)
	d2 := NewDist(altered)
	b := math.Max(d1.Max(), d2.Max())
	s1 := d1.SuperCumulativeAt(b, step)
	s2 := d2.SuperCumulativeAt(b, step)
	return Score{
		Value:    math.Abs(s1 - s2),
		Benefit:  s2 > s1,
		Baseline: s1,
		Altered:  s2,
	}
}

// TimeSeries is a per-bucket event count over an experiment, the raw data of
// the throughput-over-time figures.
type TimeSeries struct {
	Bucket time.Duration
	Counts []int
}

// Throughput buckets event times into a series covering [0, total).
func Throughput(events []time.Duration, bucket, total time.Duration) TimeSeries {
	if bucket <= 0 {
		bucket = time.Second
	}
	n := int((total + bucket - 1) / bucket)
	if n < 0 {
		n = 0
	}
	counts := make([]int, n)
	for _, ev := range events {
		i := int(ev / bucket)
		if i >= 0 && i < n {
			counts[i]++
		}
	}
	return TimeSeries{Bucket: bucket, Counts: counts}
}

// Rate returns the event rate of bucket i in events per second.
func (ts TimeSeries) Rate(i int) float64 {
	if i < 0 || i >= len(ts.Counts) || ts.Bucket <= 0 {
		return 0
	}
	return float64(ts.Counts[i]) / ts.Bucket.Seconds()
}

// MeanRate averages the rate over buckets covering [from, to).
func (ts TimeSeries) MeanRate(from, to time.Duration) float64 {
	if ts.Bucket <= 0 || to <= from {
		return 0
	}
	lo := int(from / ts.Bucket)
	hi := int(to / ts.Bucket)
	if hi > len(ts.Counts) {
		hi = len(ts.Counts)
	}
	if lo >= hi {
		return 0
	}
	total := 0
	for i := lo; i < hi; i++ {
		total += ts.Counts[i]
	}
	return float64(total) / (float64(hi-lo) * ts.Bucket.Seconds())
}

// Total returns the sum of all bucket counts.
func (ts TimeSeries) Total() int {
	sum := 0
	for _, c := range ts.Counts {
		sum += c
	}
	return sum
}

// RecoveryTime estimates how long after recoverAt the series needed to
// sustain at least frac*reference events/s over a window of w buckets.
// It returns the delay and whether recovery was observed at all.
func (ts TimeSeries) RecoveryTime(recoverAt time.Duration, reference, frac float64, w int) (time.Duration, bool) {
	if ts.Bucket <= 0 || w <= 0 || reference <= 0 {
		return 0, false
	}
	target := frac * reference
	start := int(recoverAt / ts.Bucket)
	for i := start; i+w <= len(ts.Counts); i++ {
		sum := 0
		for j := i; j < i+w; j++ {
			sum += ts.Counts[j]
		}
		rate := float64(sum) / (float64(w) * ts.Bucket.Seconds())
		if rate >= target {
			return time.Duration(i)*ts.Bucket - recoverAt, true
		}
	}
	return 0, false
}

// StabilizationTime estimates when a series stops oscillating after an
// event: the delay from eventAt to the start of the last window from which
// every subsequent window of w buckets keeps its coefficient of variation
// (stddev/mean) at or below maxCV. It returns false when the series never
// stabilizes. This quantifies observations like "the throughput instability
// reduces in about 82 seconds" (STABL §4 on Aptos).
func (ts TimeSeries) StabilizationTime(eventAt time.Duration, w int, maxCV float64) (time.Duration, bool) {
	if ts.Bucket <= 0 || w <= 1 {
		return 0, false
	}
	start := int(eventAt / ts.Bucket)
	if start < 0 {
		start = 0
	}
	if start+w > len(ts.Counts) {
		return 0, false
	}
	lastUnstable := start - 1
	for i := start; i+w <= len(ts.Counts); i++ {
		var sum float64
		for j := i; j < i+w; j++ {
			sum += float64(ts.Counts[j])
		}
		mean := sum / float64(w)
		if mean <= 0 {
			lastUnstable = i
			continue
		}
		var varsum float64
		for j := i; j < i+w; j++ {
			d := float64(ts.Counts[j]) - mean
			varsum += d * d
		}
		cv := math.Sqrt(varsum/float64(w)) / mean
		if cv > maxCV {
			lastUnstable = i
		}
	}
	stableFrom := lastUnstable + 1
	if stableFrom+w > len(ts.Counts) {
		return 0, false
	}
	if stableFrom < start {
		stableFrom = start
	}
	return time.Duration(stableFrom)*ts.Bucket - eventAt, true
}

// CSV writes the series as "seconds,count" rows.
func (ts TimeSeries) CSV(w io.Writer) error {
	for i, c := range ts.Counts {
		if _, err := fmt.Fprintf(w, "%.0f,%d\n", (time.Duration(i) * ts.Bucket).Seconds(), c); err != nil {
			return err
		}
	}
	return nil
}
