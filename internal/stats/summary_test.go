package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeHandComputed(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2 {
		t.Fatalf("p50 = %v", s.P50)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Stddev-wantStd) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() != "no samples" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1})
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String = %q", s.String())
	}
}

// Property: quantiles are ordered and bounded by min/max.
func TestPropertySummaryQuantileOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P95 &&
			s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinsAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.9, 1.5, 2.5, 99}, 1, 3)
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Over != 1 {
		t.Fatalf("over = %d", h.Over)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewHistogram([]float64{-5}, 1, 2)
	if h.Counts[0] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{0.5, 0.6, 1.5, 10}, 1, 2)
	out := h.Render(10)
	if !strings.Contains(out, "overflow") {
		t.Fatalf("render = %q", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("render = %q", out)
	}
}

func TestKolmogorovSmirnovKnownValues(t *testing.T) {
	if d := KolmogorovSmirnov([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Fatalf("identical KS = %v", d)
	}
	// Disjoint supports: the eCDFs never overlap, KS = 1.
	if d := KolmogorovSmirnov([]float64{1, 2}, []float64{10, 11}); d != 1 {
		t.Fatalf("disjoint KS = %v", d)
	}
	if d := KolmogorovSmirnov(nil, []float64{1}); d != 0 {
		t.Fatalf("empty KS = %v", d)
	}
}

// Property: KS is symmetric and within [0,1].
func TestPropertyKSSymmetricBounded(t *testing.T) {
	f := func(a, b []uint8) bool {
		fa := make([]float64, len(a))
		for i, v := range a {
			fa[i] = float64(v)
		}
		fb := make([]float64, len(b))
		for i, v := range b {
			fb[i] = float64(v)
		}
		d1 := KolmogorovSmirnov(fa, fb)
		d2 := KolmogorovSmirnov(fb, fa)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
