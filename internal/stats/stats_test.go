package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestECDFBasics(t *testing.T) {
	d := NewDist([]float64{1, 2, 2, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := d.ECDF(c.x); got != c.want {
			t.Fatalf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	d := NewDist(nil)
	if d.ECDF(1) != 0 || d.Max() != 0 || d.Mean() != 0 || d.Len() != 0 {
		t.Fatal("empty dist not all-zero")
	}
}

func TestDistSummaryStats(t *testing.T) {
	d := NewDist([]float64{3, 1, 2})
	if d.Min() != 1 || d.Max() != 3 {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
	if d.Mean() != 2 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if q := d.Quantile(0.5); q != 2 {
		t.Fatalf("median = %v", q)
	}
	if q := d.Quantile(1); q != 3 {
		t.Fatalf("p100 = %v", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v", q)
	}
}

func TestCurveDeduplicatesSteps(t *testing.T) {
	d := NewDist([]float64{1, 1, 2})
	curve := d.Curve()
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	if curve[0] != (Point{X: 1, Y: 2.0 / 3}) || curve[1] != (Point{X: 2, Y: 1}) {
		t.Fatalf("curve = %v", curve)
	}
}

func TestSuperCumulativeHandComputed(t *testing.T) {
	// Samples {1, 3}: F(0)=0, F(1)=0.5, F(2)=0.5, F(3)=1.
	// S(3) with step 1 = 0 + 0.5 + 0.5 + 1 = 2.
	d := NewDist([]float64{1, 3})
	if got := d.SuperCumulative(1); got != 2 {
		t.Fatalf("S = %v, want 2", got)
	}
}

func TestSensitivityIdenticalDistributionsIsZero(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	s := Sensitivity(samples, samples, 1)
	if s.Infinite || s.Value != 0 || s.Benefit {
		t.Fatalf("score = %+v", s)
	}
}

func TestSensitivityWorseLatenciesPositiveNoBenefit(t *testing.T) {
	base := []float64{1, 1, 2, 2}
	altered := []float64{5, 6, 7, 8}
	s := Sensitivity(base, altered, 1)
	if s.Infinite {
		t.Fatal("finite case marked infinite")
	}
	if s.Value <= 0 {
		t.Fatalf("score = %v, want > 0", s.Value)
	}
	// Higher latencies stretch the curve: larger area up to a larger max.
	if !((s.Altered > s.Baseline) == s.Benefit) {
		t.Fatalf("benefit flag inconsistent: %+v", s)
	}
}

func TestSensitivityEmptyAlteredIsInfinite(t *testing.T) {
	s := Sensitivity([]float64{1, 2}, nil, 1)
	if !s.Infinite {
		t.Fatal("empty altered should be infinite")
	}
	if s.String() != "inf" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSensitivityOutlierResilience(t *testing.T) {
	base := make([]float64, 1000)
	withOutlier := make([]float64, 1000)
	for i := range base {
		base[i] = 2
		withOutlier[i] = 2
	}
	withOutlier[0] = 50 // one extreme outlier in 1000 samples
	shifted := make([]float64, 1000)
	for i := range shifted {
		shifted[i] = 10 // every sample worse
	}
	outlierScore := Sensitivity(base, withOutlier, 1).Value
	shiftScore := Sensitivity(base, shifted, 1).Value
	if outlierScore >= shiftScore {
		t.Fatalf("outlier score %v >= full shift score %v; metric should resist outliers",
			outlierScore, shiftScore)
	}
}

// Property: the score is always non-negative and zero iff distributions have
// equal areas; order of samples is irrelevant.
func TestPropertySensitivityNonNegativeAndPermutationInvariant(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		base := make([]float64, len(a))
		for i, v := range a {
			base[i] = float64(v%50) + 1
		}
		alt := make([]float64, len(b))
		for i, v := range b {
			alt[i] = float64(v%50) + 1
		}
		s := Sensitivity(base, alt, 1)
		if s.Value < 0 || s.Infinite {
			return false
		}
		// Permute baseline: score must be identical.
		perm := append([]float64(nil), base...)
		for i := len(perm) - 1; i > 0; i-- {
			j := (i * 7) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		s2 := Sensitivity(perm, alt, 1)
		return math.Abs(s.Value-s2.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetric arguments give the same magnitude with flipped
// benefit.
func TestPropertySensitivitySymmetry(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		base := make([]float64, len(a))
		for i, v := range a {
			base[i] = float64(v) + 1
		}
		alt := make([]float64, len(b))
		for i, v := range b {
			alt[i] = float64(v) + 1
		}
		s1 := Sensitivity(base, alt, 1)
		s2 := Sensitivity(alt, base, 1)
		return math.Abs(s1.Value-s2.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputBucketsEvents(t *testing.T) {
	events := []time.Duration{0, 500 * time.Millisecond, time.Second, 2500 * time.Millisecond}
	ts := Throughput(events, time.Second, 3*time.Second)
	want := []int{2, 1, 1}
	if len(ts.Counts) != 3 {
		t.Fatalf("buckets = %v", ts.Counts)
	}
	for i := range want {
		if ts.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", ts.Counts, want)
		}
	}
	if ts.Total() != 4 {
		t.Fatalf("Total = %d", ts.Total())
	}
	if ts.Rate(0) != 2 {
		t.Fatalf("Rate(0) = %v", ts.Rate(0))
	}
}

func TestThroughputIgnoresOutOfRange(t *testing.T) {
	ts := Throughput([]time.Duration{5 * time.Second}, time.Second, 3*time.Second)
	if ts.Total() != 0 {
		t.Fatal("out-of-range event counted")
	}
}

func TestMeanRate(t *testing.T) {
	ts := TimeSeries{Bucket: time.Second, Counts: []int{10, 20, 30, 40}}
	if got := ts.MeanRate(time.Second, 3*time.Second); got != 25 {
		t.Fatalf("MeanRate = %v, want 25", got)
	}
	if got := ts.MeanRate(0, 0); got != 0 {
		t.Fatalf("empty window = %v", got)
	}
}

func TestRecoveryTimeFindsSustainedWindow(t *testing.T) {
	// Baseline 10/s; outage in buckets 5-9; recovery ramps at bucket 12.
	counts := []int{10, 10, 10, 10, 10, 0, 0, 0, 0, 0, 1, 2, 10, 10, 10, 10}
	ts := TimeSeries{Bucket: time.Second, Counts: counts}
	delay, ok := ts.RecoveryTime(10*time.Second, 10, 0.8, 3)
	if !ok {
		t.Fatal("recovery not detected")
	}
	if delay != 2*time.Second {
		t.Fatalf("delay = %v, want 2s", delay)
	}
}

func TestRecoveryTimeNotRecovered(t *testing.T) {
	ts := TimeSeries{Bucket: time.Second, Counts: []int{10, 10, 0, 0, 0, 0}}
	if _, ok := ts.RecoveryTime(2*time.Second, 10, 0.8, 2); ok {
		t.Fatal("false recovery detected")
	}
}

func TestStabilizationTimeFindsDamping(t *testing.T) {
	// Oscillation for 10 buckets after the event, then steady.
	counts := []int{100, 100, 100, 100, 100}
	counts = append(counts, 20, 180, 10, 190, 30, 170, 40, 160, 50, 150)
	for i := 0; i < 20; i++ {
		counts = append(counts, 100)
	}
	ts := TimeSeries{Bucket: time.Second, Counts: counts}
	delay, ok := ts.StabilizationTime(5*time.Second, 4, 0.2)
	if !ok {
		t.Fatal("stabilization not detected")
	}
	// Oscillation covers buckets 5-14; stabilization around 15s => ~10s
	// after the event (window effects allow a little slack).
	if delay < 6*time.Second || delay > 14*time.Second {
		t.Fatalf("delay = %v, want ~10s", delay)
	}
}

func TestStabilizationTimeNeverStable(t *testing.T) {
	counts := make([]int, 30)
	for i := range counts {
		if i%2 == 0 {
			counts[i] = 10
		} else {
			counts[i] = 200
		}
	}
	ts := TimeSeries{Bucket: time.Second, Counts: counts}
	if _, ok := ts.StabilizationTime(0, 4, 0.2); ok {
		t.Fatal("permanently oscillating series reported stable")
	}
}

func TestStabilizationTimeImmediatelyStable(t *testing.T) {
	counts := make([]int, 20)
	for i := range counts {
		counts[i] = 100
	}
	ts := TimeSeries{Bucket: time.Second, Counts: counts}
	delay, ok := ts.StabilizationTime(5*time.Second, 4, 0.2)
	if !ok || delay != 0 {
		t.Fatalf("delay = %v ok=%v, want immediate", delay, ok)
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	ts := TimeSeries{Bucket: 2 * time.Second, Counts: []int{3, 5}}
	var buf strings.Builder
	if err := ts.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "0,3\n2,5\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}
