// Package snapshot defines the checkpoint/restore contract that makes STABL
// runs forkable: every stateful simulation component implements Forkable,
// and core.Fork composes them into a whole-experiment checkpoint taken at a
// virtual instant.
//
// # Restore-in-place semantics
//
// Snapshots are value copies, not serializations. The event scheduler queues
// closures, which cannot be marshalled; instead, a snapshot deep-copies every
// piece of mutable state while leaving the object graph itself alone, and
// Restore writes that state back into the *same* objects. Continuations
// therefore run sequentially on one live experiment: fork, run continuation
// A to completion, restore, run continuation B. The queued closures restored
// with the scheduler heap keep pointing at the same components, which the
// restore has rewound to their checkpoint-time state.
//
// # State ownership rules for implementors
//
//   - Snapshot must deep-copy every field the component mutates after the
//     checkpoint instant: maps, slices that are appended to or written
//     through, counters, timers. A continuation must not be able to observe
//     writes made by a sibling continuation.
//   - Objects captured by scheduled closures (round states, protocol
//     instances, connection pair states, pooled deliveries, tickers) must be
//     restored *into the same pointer* — snapshot stores (pointer, copied
//     contents) pairs and restore writes the contents back through the
//     pointer. Replacing such an object with a fresh copy would strand the
//     queued closures on the stale one.
//   - Immutable data may be shared freely: transaction payloads, block
//     contents, config structs, and any slice the component only reads are
//     the same in every continuation by convention (see DESIGN.md
//     "Immutability of payloads").
//   - Function literals handed to the scheduler must not mutate captured
//     outer locals; mutable state belongs in struct fields covered by
//     Snapshot. A closure-local counter would silently leak one
//     continuation's progress into the next.
//   - Registries grow deterministically: components that allocate registered
//     objects (RNG streams, tickers, pooled deliveries) snapshot the
//     registry length and truncate on restore, so a continuation recreates
//     exactly the objects the replay it mirrors would.
package snapshot

// State is one component's opaque checkpoint. Each Forkable returns its own
// private state type; callers only carry it back to the same component's
// Restore.
type State any

// Forkable is implemented by every simulation component that supports
// checkpoint/restore. Snapshot captures all mutable state by value; Restore
// writes a previously captured state back in place. Restore must accept any
// State produced by the same component's Snapshot (components panic on
// foreign states — mixing them up is a harness bug, not an input error).
type Forkable interface {
	Snapshot() State
	Restore(State)
}

// Set composes Forkables into one Forkable: Snapshot captures every part in
// registration order and Restore rewinds them all. core.Fork uses a Set over
// the scheduler, network, chain nodes, clients and recorders.
type Set struct {
	parts []Forkable
}

// Add registers parts; order is preserved and only determines snapshot
// iteration, not correctness (parts restore independently).
func (s *Set) Add(parts ...Forkable) {
	s.parts = append(s.parts, parts...)
}

// Len reports how many parts are registered.
func (s *Set) Len() int { return len(s.parts) }

type setState []State

// Snapshot captures every registered part.
func (s *Set) Snapshot() State {
	states := make(setState, len(s.parts))
	for i, p := range s.parts {
		states[i] = p.Snapshot()
	}
	return states
}

// Restore rewinds every registered part. It panics when st did not come from
// this Set (or the Set grew since — forks must not register parts after the
// checkpoint).
func (s *Set) Restore(st State) {
	states, ok := st.(setState)
	if !ok {
		panic("snapshot: Set.Restore on foreign state")
	}
	if len(states) != len(s.parts) {
		panic("snapshot: Set changed size since Snapshot")
	}
	for i, p := range s.parts {
		p.Restore(states[i])
	}
}
