package redbelly

import (
	"math/rand"
	"sort"
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// roundCheck is one round's captured contents. The roundState object itself
// is identity-preserved: queued proposal/grace/coordinator closures hold the
// pointer, so Restore writes these fields back through it. Transaction and
// estimate slices are immutable once stored and are shared, not copied.
type roundCheck struct {
	st            *roundState
	round         int
	startedAt     time.Duration
	proposals     map[simnet.NodeID][]chain.Tx
	votes         map[int]map[simnet.NodeID]string
	ests          map[string][]simnet.NodeID
	myVote        map[int][]simnet.NodeID
	estimated     bool
	decided       bool
	sub           int
	coordSent     map[int]bool
	pendingDecide []simnet.NodeID
}

type validatorState struct {
	base      chain.BaseState
	ctx       *simnet.Context
	round     int
	states    []roundCheck
	resend    *sim.Ticker
	decides   uint64
	jitterRNG *rand.Rand
}

var _ snapshot.Forkable = (*validator)(nil)

// Snapshot captures the validator: its BaseNode core, round position and
// every live round's consensus state. Which ticker and RNG stream are current
// is recorded by pointer; their internal state lives in the scheduler.
func (v *validator) Snapshot() snapshot.State {
	st := &validatorState{
		base:      v.base.SnapshotBase(),
		ctx:       v.ctx,
		round:     v.round,
		states:    make([]roundCheck, 0, len(v.states)),
		resend:    v.resend,
		decides:   v.decides,
		jitterRNG: v.jitterRNG,
	}
	rounds := make([]int, 0, len(v.states))
	for r := range v.states {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		rs := v.states[r]
		rc := roundCheck{
			st:            rs,
			round:         rs.round,
			startedAt:     rs.startedAt,
			proposals:     make(map[simnet.NodeID][]chain.Tx, len(rs.proposals)),
			votes:         make(map[int]map[simnet.NodeID]string, len(rs.votes)),
			ests:          make(map[string][]simnet.NodeID, len(rs.ests)),
			myVote:        make(map[int][]simnet.NodeID, len(rs.myVote)),
			estimated:     rs.estimated,
			decided:       rs.decided,
			sub:           rs.sub,
			coordSent:     make(map[int]bool, len(rs.coordSent)),
			pendingDecide: rs.pendingDecide,
		}
		for p, txs := range rs.proposals {
			rc.proposals[p] = txs
		}
		for sub, voters := range rs.votes {
			m := make(map[simnet.NodeID]string, len(voters))
			for voter, key := range voters {
				m[voter] = key
			}
			rc.votes[sub] = m
		}
		for key, est := range rs.ests {
			rc.ests[key] = est
		}
		for sub, est := range rs.myVote {
			rc.myVote[sub] = est
		}
		for sub, sent := range rs.coordSent {
			rc.coordSent[sub] = sent
		}
		st.states = append(st.states, rc)
	}
	return st
}

// Restore rewinds the validator to a state captured by Snapshot. Round states
// created since the checkpoint are abandoned; the captured ones are restored
// in place so closures queued at checkpoint time still see them.
func (v *validator) Restore(state snapshot.State) {
	st, ok := state.(*validatorState)
	if !ok {
		panic("redbelly: validator.Restore on foreign state")
	}
	v.base.RestoreBase(st.base)
	v.ctx = st.ctx
	v.round = st.round
	v.resend = st.resend
	v.decides = st.decides
	v.jitterRNG = st.jitterRNG
	v.states = make(map[int]*roundState, len(st.states))
	for _, rc := range st.states {
		rs := rc.st
		rs.round = rc.round
		rs.startedAt = rc.startedAt
		rs.proposals = make(map[simnet.NodeID][]chain.Tx, len(rc.proposals))
		for p, txs := range rc.proposals {
			rs.proposals[p] = txs
		}
		rs.votes = make(map[int]map[simnet.NodeID]string, len(rc.votes))
		for sub, voters := range rc.votes {
			m := make(map[simnet.NodeID]string, len(voters))
			for voter, key := range voters {
				m[voter] = key
			}
			rs.votes[sub] = m
		}
		rs.ests = make(map[string][]simnet.NodeID, len(rc.ests))
		for key, est := range rc.ests {
			rs.ests[key] = est
		}
		rs.myVote = make(map[int][]simnet.NodeID, len(rc.myVote))
		for sub, est := range rc.myVote {
			rs.myVote[sub] = est
		}
		rs.estimated = rc.estimated
		rs.decided = rc.decided
		rs.sub = rc.sub
		rs.coordSent = make(map[int]bool, len(rc.coordSent))
		for sub, sent := range rc.coordSent {
			rs.coordSent[sub] = sent
		}
		rs.pendingDecide = rc.pendingDecide
		v.states[rc.round] = rs
	}
}
