package redbelly

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/simnet"
)

func shortCfg(fault core.FaultPlan) core.Config {
	return core.Config{
		System:   Default(),
		Seed:     1,
		Duration: 90 * time.Second,
		Fault:    fault,
	}
}

func TestTolerance(t *testing.T) {
	s := Default()
	if got := s.Tolerance(10); got != 3 {
		t.Fatalf("Tolerance(10) = %d, want 3", got)
	}
	if got := s.Tolerance(4); got != 1 {
		t.Fatalf("Tolerance(4) = %d, want 1", got)
	}
}

func TestBaselineCommitsWorkload(t *testing.T) {
	res, err := core.Run(shortCfg(core.FaultPlan{Kind: core.FaultNone}))
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("baseline lost liveness; last commit %v", res.LastCommitAt)
	}
	// 200 TPS for 90 s = ~18000 txs; nearly all should commit.
	if res.UniqueCommits < res.Submitted*95/100 {
		t.Fatalf("commits = %d of %d submitted", res.UniqueCommits, res.Submitted)
	}
	if len(res.Latencies) == 0 {
		t.Fatal("no client latencies")
	}
	var sum float64
	for _, l := range res.Latencies {
		sum += l
	}
	mean := sum / float64(len(res.Latencies))
	if mean > 3 {
		t.Fatalf("mean latency %.2fs too high for leaderless fast path", mean)
	}
}

func TestCrashOfTToleratedWithoutStall(t *testing.T) {
	res, err := core.Run(shortCfg(core.FaultPlan{
		Kind:     core.FaultCrash,
		InjectAt: 30 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatal("crash of f=t nodes killed liveness")
	}
	// Throughput after the crash stays close to before.
	before := res.Throughput.MeanRate(10*time.Second, 30*time.Second)
	after := res.Throughput.MeanRate(45*time.Second, 85*time.Second)
	if after < 0.85*before {
		t.Fatalf("crash degraded throughput: before=%.1f after=%.1f", before, after)
	}
}

func TestTransientStallAndRecovery(t *testing.T) {
	cfg := shortCfg(core.FaultPlan{
		Kind:      core.FaultTransient,
		InjectAt:  30 * time.Second,
		RecoverAt: 55 * time.Second,
	})
	cfg.Duration = 120 * time.Second
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// f = t+1 halts consensus during the outage.
	during := res.Throughput.MeanRate(40*time.Second, 55*time.Second)
	if during > 20 {
		t.Fatalf("throughput %v during f>t outage, want near-stall", during)
	}
	if res.LivenessLost {
		t.Fatalf("no recovery after reboot; last commit %v", res.LastCommitAt)
	}
	// Back to full speed reasonably quickly (paper: ~7 s).
	ref := res.Throughput.MeanRate(10*time.Second, 30*time.Second)
	delay, ok := res.Throughput.RecoveryTime(55*time.Second, ref, 0.7, 5)
	if !ok {
		t.Fatal("recovery not detected")
	}
	if delay > 25*time.Second {
		t.Fatalf("recovery took %v, want fast active recovery", delay)
	}
}

func TestPartitionRecoveryTimerBound(t *testing.T) {
	cfg := core.Config{
		System:   Default(),
		Seed:     3,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultPartition,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("no recovery after partition heal; last commit %v", res.LastCommitAt)
	}
	ref := res.Throughput.MeanRate(60*time.Second, 133*time.Second)
	delay, ok := res.Throughput.RecoveryTime(266*time.Second, ref, 0.7, 5)
	if !ok {
		t.Fatal("partition recovery not detected")
	}
	// Paper: 81 s, dominated by MaxIdleTime reconnect backoff. Accept a
	// broad band around it but insist it is slower than transient
	// recovery and bounded.
	if delay < 20*time.Second || delay > 120*time.Second {
		t.Fatalf("partition recovery = %v, want timer-bound tens of seconds", delay)
	}
}

func TestSuperblockUnionDeduplicates(t *testing.T) {
	cfg := DefaultConfig()
	v, ok := Default().NewValidator(0, []simnet.NodeID{0, 1, 2, 3}, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("NewValidator type")
	}
	_ = cfg
	st := newRoundState(0, 0)
	tx := chain.Tx{ID: chain.MakeTxID(0, 1)}
	st.proposals[0] = []chain.Tx{tx}
	st.proposals[1] = []chain.Tx{tx} // same tx proposed twice (secure client)
	st.proposals[2] = []chain.Tx{{ID: chain.MakeTxID(0, 2)}}
	// assemble needs a ctx only for timestamps; fake via harness-less call
	// is not possible, so check through the est/dedup logic directly.
	var total int
	seen := make(map[chain.TxID]bool)
	for _, p := range []simnet.NodeID{0, 1, 2} {
		for _, tx := range st.proposals[p] {
			if !seen[tx.ID] {
				seen[tx.ID] = true
				total++
			}
		}
	}
	if total != 2 {
		t.Fatalf("superblock union = %d txs, want 2", total)
	}
	_ = v
}

func TestEstKeyDeterministic(t *testing.T) {
	a := estKey([]simnet.NodeID{1, 2, 3})
	b := estKey([]simnet.NodeID{1, 2, 3})
	c := estKey([]simnet.NodeID{1, 2})
	if a != b || a == c {
		t.Fatalf("estKey: %q %q %q", a, b, c)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []simnet.NodeID{3, 1, 2}
	sortIDs(ids)
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("sortIDs = %v", ids)
	}
}
