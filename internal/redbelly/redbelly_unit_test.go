package redbelly

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

func unitValidator(t *testing.T, n int) *validator {
	t.Helper()
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	v, ok := Default().NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	return v
}

func TestQuorumIsNMinusT(t *testing.T) {
	v := unitValidator(t, 10)
	if v.t != 3 || v.quorum != 7 {
		t.Fatalf("t=%d quorum=%d", v.t, v.quorum)
	}
}

func TestCoordinatorRotatesWithRoundAndSubround(t *testing.T) {
	v := unitValidator(t, 4)
	if v.coordinator(0, 0) != 0 || v.coordinator(0, 1) != 1 {
		t.Fatal("sub-round does not move the coordinator")
	}
	if v.coordinator(1, 0) != 1 {
		t.Fatal("round does not move the coordinator")
	}
	if v.coordinator(3, 2) != 1 { // (3+2) mod 4
		t.Fatalf("coordinator(3,2) = %v", v.coordinator(3, 2))
	}
}

func TestMajorityEstPrefersMajority(t *testing.T) {
	v := unitValidator(t, 4)
	v.states = map[int]*roundState{}
	st := newRoundState(0, 0)
	v.states[0] = st
	estA := []simnet.NodeID{0, 1}
	estB := []simnet.NodeID{0, 1, 2}
	st.votes[0] = map[simnet.NodeID]string{
		1: estKey(estA), 2: estKey(estA), 3: estKey(estB),
	}
	st.ests[estKey(estA)] = estA
	st.ests[estKey(estB)] = estB
	got := v.majorityEst(0, 0)
	if estKey(got) != estKey(estA) {
		t.Fatalf("majorityEst = %v, want majority %v", got, estA)
	}
}

func TestMajorityEstTieFallsBackToUnion(t *testing.T) {
	v := unitValidator(t, 4)
	v.states = map[int]*roundState{}
	st := newRoundState(0, 0)
	v.states[0] = st
	estA := []simnet.NodeID{0, 1}
	estB := []simnet.NodeID{2, 3}
	st.votes[0] = map[simnet.NodeID]string{1: estKey(estA), 2: estKey(estB)}
	st.ests[estKey(estA)] = estA
	st.ests[estKey(estB)] = estB
	got := v.majorityEst(0, 0)
	if len(got) != 4 {
		t.Fatalf("tie union = %v, want all four proposers", got)
	}
}

func TestSuperblockAblationCommitsOnlyOneProposal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Superblock = false
	res, err := core.Run(core.Config{
		System:   NewSystem(cfg),
		Seed:     9,
		Duration: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One proposal per round at ~4 rounds/s and <=500 txs per proposal:
	// with 5 client-facing proposers only ~1/5 of the offered load can
	// commit each round; far fewer unique commits than with superblocks.
	full, err := core.Run(core.Config{
		System:   Default(),
		Seed:     9,
		Duration: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueCommits*2 > full.UniqueCommits {
		t.Fatalf("single-proposal commits %d vs superblock %d; ablation too weak",
			res.UniqueCommits, full.UniqueCommits)
	}
}

func TestDecideWaitsForMissingProposalContent(t *testing.T) {
	// A validator that agreed on an est containing a proposal it has not
	// received must not decide until the content arrives.
	sched, net, v := singleValidatorHarness(t)
	_ = net
	st := v.state(0)
	est := []simnet.NodeID{0, 1}
	st.proposals[0] = []chain.Tx{}
	v.decide(0, est) // proposal from 1 missing
	if st.decided {
		t.Fatal("decided without proposal content")
	}
	if st.pendingDecide == nil {
		t.Fatal("pending decision not parked")
	}
	v.onProposal(1, proposalMsg{Round: 0, Proposer: 1, Txs: nil})
	if !st.decided {
		t.Fatal("arrival of missing proposal did not complete the decision")
	}
	sched.RunUntil(time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatalf("height = %d", v.base.Ledger.Height())
	}
}

// singleValidatorHarness boots one Redbelly validator next to a silent peer,
// giving unit tests a live context without a full deployment.
func singleValidatorHarness(t *testing.T) (*sim.Scheduler, *simnet.Network, *validator) {
	t.Helper()
	sched := sim.New(3)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
	v, ok := Default().NewValidator(0, []simnet.NodeID{0, 1}, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected type")
	}
	net.AddNode(0, v)
	net.AddNode(1, &nopPeer{})
	net.StartAll()
	return sched, net, v
}

type nopPeer struct{}

func (nopPeer) Start(*simnet.Context)      {}
func (nopPeer) Stop()                      {}
func (nopPeer) Deliver(simnet.NodeID, any) {}
