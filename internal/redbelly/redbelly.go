// Package redbelly models the Redbelly blockchain (STABL §2): the
// leaderless, deterministic DBFT consensus with a weak coordinator that
// cannot block convergence, and the superblock optimization that commits the
// union of all validators' proposals in every round.
//
// The model reproduces the behaviours STABL measures:
//
//   - Crash insensitivity: no leader means no round depends on a specific
//     node; f = t crashes only shrink the proposal union (§4).
//   - Fast transient recovery: restarted nodes actively reconnect, catch up
//     via block sync, and the quorum resumes within a few rounds (§5).
//   - Timeout-bound partition recovery: connections idle out after
//     MaxIdleTime (30 s) and reconnection retries back off, so healing a
//     partition takes tens of seconds to take effect (§6).
//   - Secure-client benefit: a transaction submitted to t+1 validators sits
//     in t+1 mempools and joins the superblock on whichever proposes first
//     (§7).
package redbelly

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"stabl/internal/chain"
	"stabl/internal/committee"
	"stabl/internal/metrics"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// Config parameterizes the Redbelly model.
type Config struct {
	// MaxProposalTxs caps one validator's per-round proposal.
	MaxProposalTxs int
	// ProposalGrace is how long a node keeps collecting proposals after
	// reaching quorum, letting estimates converge without a coordinator.
	ProposalGrace time.Duration
	// ProposalTimeout bounds the proposal collection phase.
	ProposalTimeout time.Duration
	// CoordTimeout bounds waiting for the weak coordinator's hint.
	CoordTimeout time.Duration
	// ResendInterval re-broadcasts proposals/votes of an undecided round.
	ResendInterval time.Duration
	// MinRoundInterval paces round starts.
	MinRoundInterval time.Duration
	// InterBlock is the delay between deciding and starting the next
	// round.
	InterBlock time.Duration
	// ProposalJitter models per-node processing skew before proposing;
	// it desynchronizes proposal instants, which is what lets a
	// redundantly submitted transaction catch an earlier superblock
	// (§7).
	ProposalJitter time.Duration
	// Superblock disables the union optimization when false: only the
	// round coordinator's proposal commits (ablation of DESIGN.md §5).
	Superblock bool
	// Base configures the shared validator core.
	Base chain.BaseConfig
	// Conn configures the peer connection layer.
	Conn simnet.ConnParams
}

// DefaultConfig returns the production-like parameters used by the STABL
// experiments.
func DefaultConfig() Config {
	return Config{
		MaxProposalTxs:   500,
		ProposalGrace:    200 * time.Millisecond,
		ProposalTimeout:  2 * time.Second,
		CoordTimeout:     time.Second,
		ResendInterval:   2 * time.Second,
		MinRoundInterval: 250 * time.Millisecond,
		InterBlock:       50 * time.Millisecond,
		ProposalJitter:   150 * time.Millisecond,
		Superblock:       true,
		Base: chain.BaseConfig{
			ExecRate: 5000, // ample execution budget: backlog drains fast
		},
		Conn: simnet.ConnParams{
			HeartbeatInterval: 5 * time.Second,
			IdleTimeout:       30 * time.Second, // MaxIdleTime
			ReconnectBase:     45 * time.Second,
			ReconnectCap:      90 * time.Second,
			Multiplier:        2,
			HandshakeTimeout:  2 * time.Second,
		},
	}
}

// System implements chain.System for Redbelly.
type System struct {
	cfg Config
}

var _ chain.System = (*System)(nil)

// NewSystem creates a Redbelly system with the given configuration.
func NewSystem(cfg Config) *System { return &System{cfg: cfg} }

// Default creates a Redbelly system with DefaultConfig.
func Default() *System { return NewSystem(DefaultConfig()) }

// Name implements chain.System.
func (s *System) Name() string { return "Redbelly" }

// Tolerance implements chain.System: t = ceil(n/3) - 1.
func (s *System) Tolerance(n int) int { return chain.ToleranceThird(n) }

// ConnParams implements chain.System.
func (s *System) ConnParams() simnet.ConnParams { return s.cfg.Conn }

// NewValidator implements chain.System.
func (s *System) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &validator{
		cfg:  s.cfg,
		base: chain.NewBaseNode(id, peers, mon, s.cfg.Base),
		n:    len(peers),
		t:    chain.ToleranceThird(len(peers)),
	}
	v.quorum = committee.Quorum(v.n, v.t)
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

// Wire messages. Every message carries its round.
type (
	// proposalMsg is one validator's per-round batch.
	proposalMsg struct {
		Round    int
		Proposer simnet.NodeID
		Txs      []chain.Tx
	}
	// voteMsg carries a binary-consensus estimate: the set of proposers
	// whose proposals the voter wants included.
	voteMsg struct {
		Round  int
		Sub    int
		Voter  simnet.NodeID
		Est    []simnet.NodeID
		Resend bool
	}
	// coordMsg is the weak coordinator's tie-breaking hint.
	coordMsg struct {
		Round int
		Sub   int
		Est   []simnet.NodeID
	}
	// decideMsg carries a decided superblock so laggards converge
	// without a separate fetch protocol.
	decideMsg struct {
		Round int
		Block chain.Block
	}
)

type roundState struct {
	round     int
	startedAt time.Duration
	proposals map[simnet.NodeID][]chain.Tx
	votes     map[int]map[simnet.NodeID]string // sub -> voter -> est key
	ests      map[string][]simnet.NodeID
	myVote    map[int][]simnet.NodeID
	estimated bool
	decided   bool
	sub       int
	coordSent map[int]bool
	// pendingDecide holds an agreed proposer set whose contents are not
	// all locally available yet; the decision completes when the missing
	// proposals (or a decide broadcast) arrive.
	pendingDecide []simnet.NodeID
}

func newRoundState(round int, now time.Duration) *roundState {
	return &roundState{
		round:     round,
		startedAt: now,
		proposals: make(map[simnet.NodeID][]chain.Tx),
		votes:     make(map[int]map[simnet.NodeID]string),
		ests:      make(map[string][]simnet.NodeID),
		myVote:    make(map[int][]simnet.NodeID),
		coordSent: make(map[int]bool),
	}
}

type validator struct {
	cfg    Config
	base   *chain.BaseNode
	n      int
	t      int
	quorum int

	ctx       *simnet.Context
	round     int
	states    map[int]*roundState
	resend    *sim.Ticker
	decides   uint64
	jitterRNG *rand.Rand
}

var _ simnet.Handler = (*validator)(nil)

// Start implements simnet.Handler.
func (v *validator) Start(ctx *simnet.Context) {
	v.ctx = ctx
	v.jitterRNG = ctx.RNG("redbelly.jitter")
	v.base.Reset(ctx)
	v.states = make(map[int]*roundState)
	v.base.OnCaughtUp = func() {
		v.round = v.base.Ledger.Height()
		v.startRound(v.round)
	}
	v.resend = ctx.Every(v.cfg.ResendInterval, v.resendRound)
	if v.base.Ledger.Height() == 0 && v.round == 0 {
		v.round = 0
		v.startRound(0)
		return
	}
	// Restart: actively rejoin by catching up first.
	v.round = v.base.Ledger.Height()
	v.base.StartCatchUp()
}

// Stop implements simnet.Handler.
func (v *validator) Stop() {
	if v.resend != nil {
		v.resend.Stop()
	}
}

// Base exposes the validator core for tests and the harness.
func (v *validator) Base() *chain.BaseNode { return v.base }

// Deliver implements simnet.Handler.
func (v *validator) Deliver(from simnet.NodeID, payload any) {
	payload, ok := v.base.Unwrap(from, payload)
	if !ok {
		return
	}
	if v.base.HandleClient(from, payload) {
		return
	}
	if v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case proposalMsg:
		v.onProposal(from, msg)
	case voteMsg:
		v.onVote(msg)
	case coordMsg:
		v.onCoord(msg)
	case decideMsg:
		v.onDecide(msg)
	}
}

func (v *validator) state(round int) *roundState {
	st, ok := v.states[round]
	if !ok {
		st = newRoundState(round, v.ctx.Now())
		v.states[round] = st
	}
	return st
}

func (v *validator) startRound(round int) {
	if round < v.round {
		return
	}
	v.round = round
	st := v.state(round)
	st.startedAt = v.ctx.Now()
	v.base.Consensus(metrics.EventRoundStart, round, v.coordinator(round, 0), "")
	jitter := time.Duration(0)
	if v.cfg.ProposalJitter > 0 {
		jitter = time.Duration(v.jitterRNG.Int63n(int64(v.cfg.ProposalJitter)))
	}
	v.ctx.After(jitter, func() {
		if v.state(round).decided {
			return
		}
		txs := v.base.Pool.Pop(v.cfg.MaxProposalTxs)
		st.proposals[v.base.ID] = txs
		v.base.Broadcast(proposalMsg{Round: round, Proposer: v.base.ID, Txs: txs})
		v.maybeScheduleEstimate(round)
	})
	v.ctx.After(v.cfg.ProposalTimeout, func() {
		if cur := v.state(round); !cur.decided && cur.myVote[0] == nil {
			v.base.Consensus(metrics.EventTimeout, round, v.base.ID, "proposal quorum timeout")
		}
		v.estimate(round)
	})
	v.maybeScheduleEstimate(round)
}

func (v *validator) onProposal(from simnet.NodeID, msg proposalMsg) {
	if v.repliedIfDecided(from, msg.Round) {
		return
	}
	st := v.state(msg.Round)
	if _, dup := st.proposals[msg.Proposer]; dup {
		return
	}
	st.proposals[msg.Proposer] = msg.Txs
	if st.pendingDecide != nil {
		v.decide(msg.Round, st.pendingDecide)
	}
	v.maybeScheduleEstimate(msg.Round)
	v.maybeSendCoord(msg.Round)
}

// maybeScheduleEstimate arms the grace timer once quorum proposals arrived.
func (v *validator) maybeScheduleEstimate(round int) {
	st := v.state(round)
	if st.estimated || round != v.round {
		return
	}
	if len(st.proposals) < v.quorum {
		return
	}
	st.estimated = true
	v.ctx.After(v.cfg.ProposalGrace, func() { v.estimate(round) })
}

// estimate emits the node's sub-round-0 vote: include every proposer whose
// proposal it holds.
func (v *validator) estimate(round int) {
	st := v.state(round)
	if st.decided || st.myVote[0] != nil {
		return
	}
	est := make([]simnet.NodeID, 0, len(st.proposals))
	for p := range st.proposals {
		est = append(est, p)
	}
	sortIDs(est)
	v.castVote(round, 0, est, false)
}

func (v *validator) castVote(round, sub int, est []simnet.NodeID, resend bool) {
	st := v.state(round)
	if st.myVote[sub] == nil {
		st.myVote[sub] = est
	}
	msg := voteMsg{Round: round, Sub: sub, Voter: v.base.ID, Est: st.myVote[sub], Resend: resend}
	v.onVote(msg) // count own vote
	v.base.Broadcast(msg)
}

func (v *validator) onVote(msg voteMsg) {
	if v.repliedIfDecided(msg.Voter, msg.Round) {
		return
	}
	st := v.state(msg.Round)
	if st.decided {
		return
	}
	votes, ok := st.votes[msg.Sub]
	if !ok {
		votes = make(map[simnet.NodeID]string)
		st.votes[msg.Sub] = votes
	}
	key := estKey(msg.Est)
	if _, dup := votes[msg.Voter]; dup {
		return
	}
	votes[msg.Voter] = key
	st.ests[key] = msg.Est
	v.evaluate(msg.Round, msg.Sub)
	v.maybeSendCoord(msg.Round)
}

// evaluate checks the decision rule for (round, sub): quorum of identical
// estimates decides; a full quorum of mixed estimates advances the sub-round
// through the weak-coordinator path.
func (v *validator) evaluate(round, sub int) {
	st := v.state(round)
	if st.decided || round != v.round || sub != st.sub {
		return
	}
	votes := st.votes[sub]
	if len(votes) < v.quorum {
		return
	}
	counts := make(map[string]int)
	for _, key := range votes {
		counts[key]++
	}
	// At most one estimate can reach quorum (quorum = n-t > n/2), so which
	// key decides is order-independent today — but iterate sorted anyway so
	// the decision path stays provably deterministic if that invariant ever
	// weakens, and so the send behind decide never follows map order.
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if counts[key] >= v.quorum {
			v.decide(round, st.ests[key])
			return
		}
	}
	// Mixed estimates: defer to the weak coordinator of this sub-round,
	// falling back to our majority view when it stays silent (a crashed
	// coordinator cannot block convergence).
	st.sub = sub + 1
	v.base.Consensus(metrics.EventLeaderChange, round, v.coordinator(round, sub+1), "sub-round coordinator rotation")
	v.ctx.After(v.cfg.CoordTimeout, func() {
		cur := v.state(round)
		if cur.decided || cur.myVote[sub+1] != nil {
			return
		}
		v.base.Consensus(metrics.EventTimeout, round, v.coordinator(round, sub+1), "coordinator silent")
		v.castVote(round, sub+1, v.majorityEst(round, sub), false)
	})
	v.maybeSendCoord(round)
}

// coordinator returns the weak coordinator of a sub-round.
func (v *validator) coordinator(round, sub int) simnet.NodeID {
	return v.base.Peers[(round+sub)%len(v.base.Peers)]
}

// maybeSendCoord lets this node, when it is the coordinator of the current
// sub-round and has a quorum of votes, broadcast its tie-breaking hint.
func (v *validator) maybeSendCoord(round int) {
	st := v.state(round)
	if st.decided || round != v.round || st.sub == 0 {
		return
	}
	sub := st.sub - 1
	if v.coordinator(round, sub) != v.base.ID || st.coordSent[sub] {
		return
	}
	if len(st.votes[sub]) < v.quorum {
		return
	}
	st.coordSent[sub] = true
	hint := v.majorityEst(round, sub)
	msg := coordMsg{Round: round, Sub: sub, Est: hint}
	v.base.Broadcast(msg)
	v.onCoord(msg)
}

func (v *validator) onCoord(msg coordMsg) {
	st := v.state(msg.Round)
	if st.decided || st.myVote[msg.Sub+1] != nil {
		return
	}
	v.castVote(msg.Round, msg.Sub+1, msg.Est, false)
}

// majorityEst picks the most common estimate of a sub-round, breaking ties
// by the union of all voted estimates so the result grows toward inclusion.
func (v *validator) majorityEst(round, sub int) []simnet.NodeID {
	st := v.state(round)
	counts := make(map[string]int)
	for _, key := range st.votes[sub] {
		counts[key]++
	}
	bestKey, best := "", 0
	for key, c := range counts {
		if c > best || (c == best && key > bestKey) {
			bestKey, best = key, c
		}
	}
	if best*2 > len(st.votes[sub]) {
		return st.ests[bestKey]
	}
	union := make(map[simnet.NodeID]bool)
	for key := range counts {
		for _, id := range st.ests[key] {
			union[id] = true
		}
	}
	est := make([]simnet.NodeID, 0, len(union))
	for id := range union {
		est = append(est, id)
	}
	sortIDs(est)
	return est
}

// decide assembles the superblock for the agreed proposer set and commits.
func (v *validator) decide(round int, est []simnet.NodeID) {
	st := v.state(round)
	if st.decided {
		return
	}
	missing := 0
	for _, p := range est {
		if _, ok := st.proposals[p]; !ok {
			missing++
		}
	}
	if v.base.ChainTip() != round {
		// The node lags behind: it cannot compute the parent link for
		// this round yet. A decide broadcast or catch-up will deliver
		// the assembled block.
		st.pendingDecide = est
		return
	}
	if missing > 0 {
		// Wait for the missing contents: resends or an assembling
		// peer's decide broadcast (which carries the full block) will
		// complete the decision.
		st.pendingDecide = est
		return
	}
	st.pendingDecide = nil
	st.decided = true
	v.base.Consensus(metrics.EventCommit, round, v.coordinator(round, 0), "superblock decided")
	v.decides++
	block := v.assemble(round, est, st)
	v.base.SubmitBlock(block)
	v.base.Broadcast(decideMsg{Round: round, Block: block})
	v.advance(round)
}

func (v *validator) assemble(round int, est []simnet.NodeID, st *roundState) chain.Block {
	include := est
	if !v.cfg.Superblock && len(est) > 0 {
		// Ablation: commit only the weak coordinator's proposal (or the
		// lowest included proposer when the coordinator is excluded).
		coord := v.coordinator(round, 0)
		include = nil
		for _, p := range est {
			if p == coord {
				include = []simnet.NodeID{p}
				break
			}
		}
		if include == nil {
			include = est[:1]
		}
	}
	var txs []chain.Tx
	seen := make(map[chain.TxID]bool)
	for _, p := range include {
		for _, tx := range st.proposals[p] {
			if seen[tx.ID] {
				continue
			}
			seen[tx.ID] = true
			txs = append(txs, tx)
		}
	}
	// A superblock has no single proposer; every assembling node must
	// produce a bit-identical block, so the field is set deterministically
	// to the first included proposer (or the round's weak coordinator for
	// an empty round).
	proposer := v.coordinator(round, 0)
	if len(include) > 0 {
		proposer = include[0]
	}
	return chain.Block{
		Height:    round,
		Proposer:  proposer,
		Parent:    v.base.TipHash(),
		Txs:       txs,
		DecidedAt: v.ctx.Now(),
	}
}

func (v *validator) onDecide(msg decideMsg) {
	st := v.state(msg.Round)
	if !st.decided {
		st.decided = true
		v.base.SubmitBlock(msg.Block)
	}
	v.advance(msg.Round)
}

// advance moves to the next round after a decision, respecting pacing.
func (v *validator) advance(decided int) {
	if decided < v.round {
		return
	}
	next := decided + 1
	st := v.states[decided]
	delete(v.states, decided-2) // bounded memory
	wait := v.cfg.InterBlock
	if st != nil {
		elapsed := v.ctx.Now() - st.startedAt
		if elapsed+wait < v.cfg.MinRoundInterval {
			wait = v.cfg.MinRoundInterval - elapsed
		}
	}
	v.round = next
	v.ctx.After(wait, func() {
		if v.round == next && !v.state(next).decided {
			v.startRound(next)
		}
	})
}

// repliedIfDecided answers protocol traffic for already-decided rounds with
// the decided block, letting laggards converge; it reports whether the round
// was already decided locally.
func (v *validator) repliedIfDecided(from simnet.NodeID, round int) bool {
	if round >= v.base.Ledger.Height() {
		return false
	}
	if from == v.base.ID {
		return true
	}
	if b, err := v.base.Ledger.Block(round); err == nil {
		v.ctx.Send(from, decideMsg{Round: round, Block: b})
	}
	return true
}

// resendRound re-broadcasts this node's proposal and votes for the current
// round while it stays undecided, so nodes that were down or partitioned
// when the originals went out can still join the quorum.
func (v *validator) resendRound() {
	st, ok := v.states[v.round]
	if !ok || st.decided {
		return
	}
	if v.ctx.Now()-st.startedAt < v.cfg.ResendInterval {
		return
	}
	if txs, ok := st.proposals[v.base.ID]; ok {
		v.base.Broadcast(proposalMsg{Round: v.round, Proposer: v.base.ID, Txs: txs})
	}
	// Resend votes in ascending sub-round order: each send samples the
	// shared latency (and degradation) RNG streams, so iterating the map
	// directly would let Go's randomized map order desync otherwise
	// identical runs whenever a round reaches sub-round 1.
	subs := make([]int, 0, len(st.myVote))
	for sub := range st.myVote {
		subs = append(subs, sub)
	}
	sort.Ints(subs)
	for _, sub := range subs {
		if est := st.myVote[sub]; est != nil {
			v.base.Broadcast(voteMsg{Round: v.round, Sub: sub, Voter: v.base.ID, Est: est, Resend: true})
		}
	}
	// A node that has been stuck for a long time relative to the chain
	// head, or has a gap in its decided-block pipeline, missed decisions
	// entirely; catch up.
	if v.round < v.highestSeen() || v.base.HeadPending() > v.base.Ledger.Height() {
		v.base.StartCatchUp()
	}
}

func (v *validator) highestSeen() int {
	high := v.round
	for r := range v.states {
		if r > high {
			high = r
		}
	}
	return high
}

// Decides reports how many rounds this validator decided first-hand.
func (v *validator) Decides() uint64 { return v.decides }

func sortIDs(ids []simnet.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func estKey(est []simnet.NodeID) string {
	var b strings.Builder
	for _, id := range est {
		fmt.Fprintf(&b, "%d,", int(id))
	}
	return b.String()
}
