// Package client implements the DIABLO-style load clients: constant-rate
// transaction submitters that measure client-observed commit latency.
//
// Two SDK behaviours are modelled. The default client trusts a single
// validator, like the Algorand/Aptos/Avalanche/Solana SDKs. The secure
// client (STABL §7) submits every transaction to t+1 validators and reports
// it committed only once all of them answered, which is how an application
// defends against a Byzantine validator returning forged results.
package client

import (
	"time"

	"stabl/internal/chain"
	"stabl/internal/simnet"
	"stabl/internal/workload"
)

// Config parameterizes a Client.
type Config struct {
	// Index is the client's number, used for TxID namespacing.
	Index uint32
	// Endpoints are the validators this client submits to. One endpoint
	// is the default SDK behaviour; t+1 endpoints is the secure client.
	Endpoints []simnet.NodeID
	// Rate is the submission rate in tx/s.
	Rate float64
	// Stop is when the client stops submitting (it keeps listening for
	// confirmations afterwards). Zero means never stop.
	Stop time.Duration
	// Profile shapes the send rate over time (nil = constant). The
	// effective rate at time t is Rate * Profile(t).
	Profile workload.Profile
	// RetryAfter resubmits a transaction that has not been confirmed;
	// zero disables retries. Retries target the same endpoints and
	// deduplicate server-side, mirroring DIABLO's retry loop.
	RetryAfter time.Duration
	// MaxRetries bounds resubmissions per transaction.
	MaxRetries int
}

// pendingTx tracks one in-flight transaction.
type pendingTx struct {
	tx        chain.Tx
	confirmed map[simnet.NodeID]bool
	retries   int
	retryAt   time.Duration
}

// Client is a simnet endpoint that drives load into the chain under test.
type Client struct {
	cfg Config
	gen *workload.Generator

	ctx        *simnet.Context
	ticker     interface{ Stop() }
	pending    map[chain.TxID]*pendingTx
	order      []chain.TxID // pending txs in submission order; retries must not follow map order
	credits    float64
	lastAccrue time.Duration
	latencies  []float64 // seconds, completed transactions
	completeAt []time.Duration
	submitted  int
	retried    int
	duplicates int
}

var _ simnet.Handler = (*Client)(nil)

// New creates a client; gen supplies its transactions.
func New(cfg Config, gen *workload.Generator) *Client {
	if len(cfg.Endpoints) == 0 {
		panic("client: no endpoints")
	}
	if cfg.Rate <= 0 {
		panic("client: rate must be positive")
	}
	return &Client{cfg: cfg, gen: gen, pending: make(map[chain.TxID]*pendingTx)}
}

// Start implements simnet.Handler.
func (c *Client) Start(ctx *simnet.Context) {
	c.ctx = ctx
	interval := time.Duration(float64(time.Second) / c.cfg.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	if c.cfg.Profile == nil {
		c.ticker = ctx.Every(interval, c.tick)
	} else {
		// Profiled rates accrue fractional credits on a fine tick and
		// submit whole transactions as they complete.
		c.lastAccrue = ctx.Now()
		step := interval / 4
		if step <= 0 {
			step = time.Millisecond
		}
		c.ticker = ctx.Every(step, c.accrue)
	}
	if c.cfg.RetryAfter > 0 {
		ctx.Every(time.Second, c.checkRetries)
	}
}

// accrue implements profile-shaped submission.
func (c *Client) accrue() {
	now := c.ctx.Now()
	if c.cfg.Stop > 0 && now >= c.cfg.Stop {
		c.ticker.Stop()
		return
	}
	dt := now - c.lastAccrue
	c.lastAccrue = now
	rate := c.cfg.Rate * c.cfg.Profile(now)
	if rate < 0 {
		rate = 0
	}
	c.credits += rate * dt.Seconds()
	for c.credits >= 1 {
		c.credits--
		c.submit(now)
	}
}

// Stop implements simnet.Handler.
func (c *Client) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Deliver implements simnet.Handler.
func (c *Client) Deliver(from simnet.NodeID, payload any) {
	msg, ok := payload.(chain.TxCommitted)
	if !ok {
		return
	}
	p, ok := c.pending[msg.ID]
	if !ok {
		c.duplicates++
		return
	}
	p.confirmed[from] = true
	if len(p.confirmed) < len(c.cfg.Endpoints) {
		return
	}
	// All endpoints confirmed (a single endpoint for the default SDK).
	lat := c.ctx.Now() - p.tx.Submitted
	c.latencies = append(c.latencies, lat.Seconds())
	c.completeAt = append(c.completeAt, c.ctx.Now())
	delete(c.pending, msg.ID)
}

func (c *Client) tick() {
	now := c.ctx.Now()
	if c.cfg.Stop > 0 && now >= c.cfg.Stop {
		c.ticker.Stop()
		return
	}
	c.submit(now)
}

func (c *Client) submit(now time.Duration) {
	tx := c.gen.Next(now)
	c.order = append(c.order, tx.ID)
	c.pending[tx.ID] = &pendingTx{
		tx:        tx,
		confirmed: make(map[simnet.NodeID]bool, len(c.cfg.Endpoints)),
		retryAt:   now + c.cfg.RetryAfter,
	}
	c.submitted++
	for _, ep := range c.cfg.Endpoints {
		c.ctx.Send(ep, chain.SubmitTx{Tx: tx})
	}
}

func (c *Client) checkRetries() {
	now := c.ctx.Now()
	// Walk in submission order, compacting completed entries as we go:
	// retransmissions draw latency samples from the shared network RNG, so
	// their order must be reproducible.
	live := c.order[:0]
	for _, id := range c.order {
		p, ok := c.pending[id]
		if !ok {
			continue
		}
		live = append(live, id)
		if p.retryAt > now {
			continue
		}
		if c.cfg.MaxRetries > 0 && p.retries >= c.cfg.MaxRetries {
			continue
		}
		p.retries++
		c.retried++
		p.retryAt = now + c.cfg.RetryAfter
		for _, ep := range c.cfg.Endpoints {
			if !p.confirmed[ep] {
				c.ctx.Send(ep, chain.SubmitTx{Tx: p.tx})
			}
		}
	}
	c.order = live
}

// Latencies returns the commit latencies (in seconds) of completed
// transactions, in completion order.
func (c *Client) Latencies() []float64 { return c.latencies }

// CompletionTimes returns when each completed transaction finished.
func (c *Client) CompletionTimes() []time.Duration { return c.completeAt }

// Submitted returns how many distinct transactions were issued.
func (c *Client) Submitted() int { return c.submitted }

// PendingCount returns how many transactions never completed.
func (c *Client) PendingCount() int { return len(c.pending) }

// Retried returns how many resubmissions occurred.
func (c *Client) Retried() int { return c.retried }
