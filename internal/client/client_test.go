package client

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/workload"
)

// ackNode is a trivial validator that confirms every submission after a
// fixed delay, or swallows submissions when mute.
type ackNode struct {
	ctx   *simnet.Context
	delay time.Duration
	mute  bool
	seen  map[chain.TxID]int
}

func (a *ackNode) Start(ctx *simnet.Context) { a.ctx = ctx }
func (a *ackNode) Stop()                     {}
func (a *ackNode) Deliver(from simnet.NodeID, payload any) {
	sub, ok := payload.(chain.SubmitTx)
	if !ok {
		return
	}
	if a.seen == nil {
		a.seen = make(map[chain.TxID]int)
	}
	a.seen[sub.Tx.ID]++
	if a.mute {
		return
	}
	id := sub.Tx.ID
	a.ctx.After(a.delay, func() {
		a.ctx.Send(from, chain.TxCommitted{ID: id})
	})
}

func clientSetup(t *testing.T, cfg Config, nodes int, delay time.Duration) (*sim.Scheduler, *Client, []*ackNode) {
	t.Helper()
	sched := sim.New(11)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(5 * time.Millisecond)})
	acks := make([]*ackNode, nodes)
	for i := range acks {
		acks[i] = &ackNode{delay: delay}
		net.AddNode(simnet.NodeID(i), acks[i])
	}
	sets := workload.Accounts(1, 4)
	gen := workload.NewGenerator(cfg.Index, sets[0], sets[0], sched.RNG("wl"))
	c := New(cfg, gen)
	net.AddNode(100, c)
	net.StartAll()
	return sched, c, acks
}

func TestClientMeasuresLatency(t *testing.T) {
	cfg := Config{Endpoints: []simnet.NodeID{0}, Rate: 10}
	sched, c, _ := clientSetup(t, cfg, 1, 100*time.Millisecond)
	sched.RunUntil(2 * time.Second)
	if c.Submitted() == 0 {
		t.Fatal("nothing submitted")
	}
	if len(c.Latencies()) == 0 {
		t.Fatal("no latencies recorded")
	}
	// Latency = 5ms up + 100ms node delay + 5ms down = 110ms.
	for _, lat := range c.Latencies() {
		if lat < 0.109 || lat > 0.112 {
			t.Fatalf("latency = %v, want ~0.110", lat)
		}
	}
}

func TestClientRateHonored(t *testing.T) {
	cfg := Config{Endpoints: []simnet.NodeID{0}, Rate: 40}
	sched, c, _ := clientSetup(t, cfg, 1, 10*time.Millisecond)
	sched.RunUntil(10 * time.Second)
	// 40 tx/s for 10 s: first tick at 25ms, so 400 +- 1.
	if c.Submitted() < 398 || c.Submitted() > 401 {
		t.Fatalf("submitted = %d, want ~400", c.Submitted())
	}
}

func TestClientStopTime(t *testing.T) {
	cfg := Config{Endpoints: []simnet.NodeID{0}, Rate: 10, Stop: time.Second}
	sched, c, _ := clientSetup(t, cfg, 1, time.Millisecond)
	sched.RunUntil(5 * time.Second)
	if c.Submitted() > 10 {
		t.Fatalf("submitted = %d after Stop, want <= 10", c.Submitted())
	}
}

func TestSecureClientWaitsForAllEndpoints(t *testing.T) {
	cfg := Config{Endpoints: []simnet.NodeID{0, 1, 2, 3}, Rate: 5, Stop: 2 * time.Second}
	sched, c, acks := clientSetup(t, cfg, 4, 50*time.Millisecond)
	// Node 3 is slower than the rest.
	acks[3].delay = 300 * time.Millisecond
	sched.RunUntil(4 * time.Second)
	if len(c.Latencies()) == 0 {
		t.Fatal("no completions")
	}
	for _, lat := range c.Latencies() {
		if lat < 0.30 {
			t.Fatalf("latency = %v; secure client must wait for slowest node", lat)
		}
	}
	// Every node saw every transaction.
	for i, a := range acks {
		if len(a.seen) != c.Submitted() {
			t.Fatalf("node %d saw %d txs, want %d", i, len(a.seen), c.Submitted())
		}
	}
}

func TestSecureClientIncompleteWithoutAllAcks(t *testing.T) {
	cfg := Config{Endpoints: []simnet.NodeID{0, 1}, Rate: 5}
	sched, c, acks := clientSetup(t, cfg, 2, 10*time.Millisecond)
	acks[1].mute = true
	sched.RunUntil(3 * time.Second)
	if len(c.Latencies()) != 0 {
		t.Fatal("completed without all endpoint confirmations")
	}
	if c.PendingCount() == 0 {
		t.Fatal("pending should be non-empty")
	}
}

func TestClientRetriesUnconfirmed(t *testing.T) {
	cfg := Config{Endpoints: []simnet.NodeID{0}, Rate: 2, RetryAfter: 2 * time.Second, MaxRetries: 3}
	sched, c, acks := clientSetup(t, cfg, 1, 10*time.Millisecond)
	acks[0].mute = true
	sched.RunUntil(10 * time.Second)
	if c.Retried() == 0 {
		t.Fatal("no retries despite silence")
	}
	// Per-tx retry bound respected.
	for id, n := range acks[0].seen {
		if n > 4 {
			t.Fatalf("tx %v submitted %d times, want <= 4", id, n)
		}
	}
}

func TestClientPanicsOnBadConfig(t *testing.T) {
	sets := workload.Accounts(1, 1)
	gen := workload.NewGenerator(0, sets[0], sets[0], sim.New(1).RNG("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty endpoints")
		}
	}()
	New(Config{Rate: 1}, gen)
}

func TestClientBurstProfileModulatesRate(t *testing.T) {
	cfg := Config{
		Endpoints: []simnet.NodeID{0},
		Rate:      40,
		Profile:   workload.Burst(10*time.Second, 5*time.Second, 3),
		Stop:      20 * time.Second,
	}
	sched, c, _ := clientSetup(t, cfg, 1, time.Millisecond)
	sched.RunUntil(25 * time.Second)
	// Two periods: 2 x (5s at 120 tx/s + 5s at 40 tx/s) = 1600 total.
	if c.Submitted() < 1500 || c.Submitted() > 1650 {
		t.Fatalf("submitted = %d, want ~1600", c.Submitted())
	}
}

func TestClientRampProfile(t *testing.T) {
	cfg := Config{
		Endpoints: []simnet.NodeID{0},
		Rate:      10,
		Profile:   workload.Ramp(0, 2, 10*time.Second),
		Stop:      10 * time.Second,
	}
	sched, c, _ := clientSetup(t, cfg, 1, time.Millisecond)
	sched.RunUntil(12 * time.Second)
	// Integral of 10*(0..2) over 10s = 100.
	if c.Submitted() < 90 || c.Submitted() > 110 {
		t.Fatalf("submitted = %d, want ~100", c.Submitted())
	}
}
