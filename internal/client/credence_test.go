package client

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// ledgerNode answers reads from a real ledger.
type ledgerNode struct {
	ctx    *simnet.Context
	ledger *chain.Ledger
}

func (n *ledgerNode) Start(ctx *simnet.Context) { n.ctx = ctx }
func (n *ledgerNode) Stop()                     {}
func (n *ledgerNode) Deliver(from simnet.NodeID, payload any) {
	req, ok := payload.(chain.ReadReq)
	if !ok {
		return
	}
	n.ctx.Send(from, chain.ReadResp{
		Seq:     req.Seq,
		Addr:    req.Addr,
		Balance: n.ledger.Balance(req.Addr),
		Nonce:   n.ledger.NextNonce(req.Addr),
		Height:  n.ledger.Height(),
	})
}

// lyingNode answers reads with a forged balance — the Byzantine validator a
// single-endpoint SDK would blindly trust.
type lyingNode struct {
	ctx *simnet.Context
}

func (n *lyingNode) Start(ctx *simnet.Context) { n.ctx = ctx }
func (n *lyingNode) Stop()                     {}
func (n *lyingNode) Deliver(from simnet.NodeID, payload any) {
	req, ok := payload.(chain.ReadReq)
	if !ok {
		return
	}
	n.ctx.Send(from, chain.ReadResp{Seq: req.Seq, Addr: req.Addr, Balance: 1 << 40})
}

// muteNode never answers.
type muteNode struct{}

func (muteNode) Start(*simnet.Context)      {}
func (muteNode) Stop()                      {}
func (muteNode) Deliver(simnet.NodeID, any) {}

func credenceSetup(t *testing.T, handlers []simnet.Handler, cfg ReaderConfig) (*sim.Scheduler, *VerifiedReader) {
	t.Helper()
	sched := sim.New(17)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(5 * time.Millisecond)})
	for i, h := range handlers {
		net.AddNode(simnet.NodeID(i), h)
	}
	r := NewVerifiedReader(cfg)
	net.AddNode(100, r)
	net.StartAll()
	return sched, r
}

func honestLedger() *chain.Ledger {
	l := chain.NewLedger()
	l.Mint(1, 500)
	return l
}

func TestVerifiedReadUnanimousSucceeds(t *testing.T) {
	shared := honestLedger()
	sched, r := credenceSetup(t,
		[]simnet.Handler{&ledgerNode{ledger: shared}, &ledgerNode{ledger: shared}, &ledgerNode{ledger: shared}},
		ReaderConfig{Endpoints: []simnet.NodeID{0, 1, 2}, Accounts: []chain.Address{1}, Rate: 10, Stop: time.Second})
	sched.RunUntil(3 * time.Second)
	if r.Reads() == 0 {
		t.Fatal("no reads issued")
	}
	if len(r.Latencies()) != r.Reads() {
		t.Fatalf("latencies = %d of %d reads", len(r.Latencies()), r.Reads())
	}
	if r.Mismatches() != 0 || r.Divergences() != 0 {
		t.Fatalf("mismatches=%d divergences=%d on honest unanimous network",
			r.Mismatches(), r.Divergences())
	}
}

func TestVerifiedReadDetectsLyingValidator(t *testing.T) {
	shared := honestLedger()
	sched, r := credenceSetup(t,
		[]simnet.Handler{&ledgerNode{ledger: shared}, &ledgerNode{ledger: shared}, &lyingNode{}},
		ReaderConfig{Endpoints: []simnet.NodeID{0, 1, 2}, Accounts: []chain.Address{1},
			Rate: 5, Stop: time.Second, Timeout: 500 * time.Millisecond, MaxRetries: 2})
	sched.RunUntil(10 * time.Second)
	if r.Divergences() == 0 {
		t.Fatal("persistent forgery not reported as divergence")
	}
	if len(r.Latencies()) != 0 {
		t.Fatal("forged read accepted as verified")
	}
	if r.Mismatches() < r.Divergences() {
		t.Fatalf("mismatches=%d < divergences=%d", r.Mismatches(), r.Divergences())
	}
}

func TestVerifiedReadSilentValidatorCountsAsDisagreement(t *testing.T) {
	shared := honestLedger()
	sched, r := credenceSetup(t,
		[]simnet.Handler{&ledgerNode{ledger: shared}, &ledgerNode{ledger: shared}, muteNode{}},
		ReaderConfig{Endpoints: []simnet.NodeID{0, 1, 2}, Accounts: []chain.Address{1},
			Rate: 5, Stop: time.Second, Timeout: 300 * time.Millisecond, MaxRetries: 1})
	sched.RunUntil(10 * time.Second)
	if r.Divergences() == 0 {
		t.Fatal("silent validator never triggered a divergence")
	}
}

func TestVerifiedReadTransientMismatchConvergesOnRetry(t *testing.T) {
	// Node 2 lags one commit behind, then catches up at 0.5 s: the first
	// read mismatches, the retry converges.
	ahead := honestLedger()
	behind := honestLedger()
	if _, err := ahead.Append(chain.Block{Height: 0, Txs: []chain.Tx{{
		ID: chain.MakeTxID(0, 0), From: 1, To: 2, Amount: 100,
	}}}); err != nil {
		t.Fatal(err)
	}
	sched, r := credenceSetup(t,
		[]simnet.Handler{&ledgerNode{ledger: ahead}, &ledgerNode{ledger: ahead}, &ledgerNode{ledger: behind}},
		ReaderConfig{Endpoints: []simnet.NodeID{0, 1, 2}, Accounts: []chain.Address{1},
			Rate: 4, Stop: 300 * time.Millisecond, Timeout: 200 * time.Millisecond, MaxRetries: 5})
	sched.At(500*time.Millisecond, func() {
		if _, err := behind.Append(chain.Block{Height: 0, Txs: []chain.Tx{{
			ID: chain.MakeTxID(0, 0), From: 1, To: 2, Amount: 100,
		}}}); err != nil {
			t.Error(err)
		}
	})
	sched.RunUntil(10 * time.Second)
	if r.Mismatches() == 0 {
		t.Fatal("lagging replica never mismatched")
	}
	if r.Divergences() != 0 {
		t.Fatal("transient lag misreported as divergence")
	}
	if len(r.Latencies()) != r.Reads() {
		t.Fatalf("latencies = %d of %d reads", len(r.Latencies()), r.Reads())
	}
}

func TestVerifiedReaderConfigValidation(t *testing.T) {
	for name, cfg := range map[string]ReaderConfig{
		"no endpoints": {Accounts: []chain.Address{1}, Rate: 1},
		"no accounts":  {Endpoints: []simnet.NodeID{0}, Rate: 1},
		"zero rate":    {Endpoints: []simnet.NodeID{0}, Accounts: []chain.Address{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			NewVerifiedReader(cfg)
		}()
	}
}
