package client

import (
	"time"

	"stabl/internal/chain"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// clientState is a Client checkpoint. No queued closure captures a pendingTx
// (retries and confirmations reach them through the map), so pending entries
// are rebuilt as fresh objects on restore.
type clientState struct {
	ctx        *simnet.Context
	ticker     interface{ Stop() }
	pending    map[chain.TxID]pendingTx
	order      []chain.TxID
	credits    float64
	lastAccrue time.Duration
	latencies  []float64
	completeAt []time.Duration
	submitted  int
	retried    int
	duplicates int
}

var _ snapshot.Forkable = (*Client)(nil)

// Snapshot captures the client: in-flight transactions, retry bookkeeping
// and the measured latencies.
func (c *Client) Snapshot() snapshot.State {
	st := &clientState{
		ctx:        c.ctx,
		ticker:     c.ticker,
		pending:    make(map[chain.TxID]pendingTx, len(c.pending)),
		order:      append([]chain.TxID(nil), c.order...),
		credits:    c.credits,
		lastAccrue: c.lastAccrue,
		latencies:  append([]float64(nil), c.latencies...),
		completeAt: append([]time.Duration(nil), c.completeAt...),
		submitted:  c.submitted,
		retried:    c.retried,
		duplicates: c.duplicates,
	}
	for id, p := range c.pending {
		cp := *p
		cp.confirmed = make(map[simnet.NodeID]bool, len(p.confirmed))
		for ep := range p.confirmed {
			cp.confirmed[ep] = true
		}
		st.pending[id] = cp
	}
	return st
}

// Restore rewinds the client to a state captured by Snapshot.
func (c *Client) Restore(state snapshot.State) {
	st, ok := state.(*clientState)
	if !ok {
		panic("client: Client.Restore on foreign state")
	}
	c.ctx = st.ctx
	c.ticker = st.ticker
	c.pending = make(map[chain.TxID]*pendingTx, len(st.pending))
	for id, p := range st.pending {
		cp := p
		cp.confirmed = make(map[simnet.NodeID]bool, len(p.confirmed))
		for ep := range p.confirmed {
			cp.confirmed[ep] = true
		}
		c.pending[id] = &cp
	}
	c.order = append(c.order[:0], st.order...)
	c.credits = st.credits
	c.lastAccrue = st.lastAccrue
	c.latencies = append(c.latencies[:0], st.latencies...)
	c.completeAt = append(c.completeAt[:0], st.completeAt...)
	c.submitted = st.submitted
	c.retried = st.retried
	c.duplicates = st.duplicates
}

var _ snapshot.Forkable = (*FlowClient)(nil)

// Snapshot captures the flow client: in-flight transactions, retry
// bookkeeping and the measured latencies. The layout mirrors clientState —
// a flow is k clients behind one endpoint, and its checkpoint is the same
// shape regardless of k.
func (c *FlowClient) Snapshot() snapshot.State {
	st := &clientState{
		ctx:        c.ctx,
		ticker:     c.ticker,
		pending:    make(map[chain.TxID]pendingTx, len(c.pending)),
		order:      append([]chain.TxID(nil), c.order...),
		credits:    c.credits,
		lastAccrue: c.lastAccrue,
		latencies:  append([]float64(nil), c.latencies...),
		completeAt: append([]time.Duration(nil), c.completeAt...),
		submitted:  c.submitted,
		retried:    c.retried,
		duplicates: c.duplicates,
	}
	for id, p := range c.pending {
		cp := *p
		cp.confirmed = make(map[simnet.NodeID]bool, len(p.confirmed))
		for ep := range p.confirmed {
			cp.confirmed[ep] = true
		}
		st.pending[id] = cp
	}
	return st
}

// Restore rewinds the flow client to a state captured by Snapshot.
func (c *FlowClient) Restore(state snapshot.State) {
	st, ok := state.(*clientState)
	if !ok {
		panic("client: FlowClient.Restore on foreign state")
	}
	c.ctx = st.ctx
	c.ticker = st.ticker
	c.pending = make(map[chain.TxID]*pendingTx, len(st.pending))
	for id, p := range st.pending {
		cp := p
		cp.confirmed = make(map[simnet.NodeID]bool, len(p.confirmed))
		for ep := range p.confirmed {
			cp.confirmed[ep] = true
		}
		c.pending[id] = &cp
	}
	c.order = append(c.order[:0], st.order...)
	c.credits = st.credits
	c.lastAccrue = st.lastAccrue
	c.latencies = append(c.latencies[:0], st.latencies...)
	c.completeAt = append(c.completeAt[:0], st.completeAt...)
	c.submitted = st.submitted
	c.retried = st.retried
	c.duplicates = st.duplicates
}

// readerState is a VerifiedReader checkpoint. The retry closure retains its
// own pendingRead (already removed from the map and immutable from then on),
// so pending entries are rebuilt as fresh objects on restore.
type readerState struct {
	ctx         *simnet.Context
	rng         interface{ Intn(int) int }
	pending     map[uint64]pendingRead
	seq         uint64
	latencies   []float64
	reads       int
	mismatches  int
	divergences int
}

var _ snapshot.Forkable = (*VerifiedReader)(nil)

// Snapshot captures the reader: in-flight read rounds and the verdict
// counters.
func (r *VerifiedReader) Snapshot() snapshot.State {
	st := &readerState{
		ctx:         r.ctx,
		rng:         r.rng,
		pending:     make(map[uint64]pendingRead, len(r.pending)),
		seq:         r.seq,
		latencies:   append([]float64(nil), r.latencies...),
		reads:       r.reads,
		mismatches:  r.mismatches,
		divergences: r.divergences,
	}
	for seq, p := range r.pending {
		cp := *p
		cp.responses = make(map[simnet.NodeID]chain.ReadResp, len(p.responses))
		for ep, resp := range p.responses {
			cp.responses[ep] = resp
		}
		st.pending[seq] = cp
	}
	return st
}

// Restore rewinds the reader to a state captured by Snapshot.
func (r *VerifiedReader) Restore(state snapshot.State) {
	st, ok := state.(*readerState)
	if !ok {
		panic("client: VerifiedReader.Restore on foreign state")
	}
	r.ctx = st.ctx
	r.rng = st.rng
	r.pending = make(map[uint64]*pendingRead, len(st.pending))
	for seq, p := range st.pending {
		cp := p
		cp.responses = make(map[simnet.NodeID]chain.ReadResp, len(p.responses))
		for ep, resp := range p.responses {
			cp.responses[ep] = resp
		}
		r.pending[seq] = &cp
	}
	r.seq = st.seq
	r.latencies = append(r.latencies[:0], st.latencies...)
	r.reads = st.reads
	r.mismatches = st.mismatches
	r.divergences = st.divergences
}
