package client

import (
	"time"

	"stabl/internal/chain"
	"stabl/internal/simnet"
)

// VerifiedReader is a credence.js-style secure read client (the library the
// paper's §9 names as future work): instead of trusting one validator's
// answer, every read is sent to t+1 validators and accepted only when all
// their responses carry the same account state. With at most t Byzantine
// validators, at least one of any t+1 responses comes from a correct node,
// so unanimity guarantees the value is genuine.
//
// Chains commit at slightly different instants, so two honest validators can
// legitimately disagree for a moment; mismatching reads are therefore
// retried before being reported as a divergence.
type VerifiedReader struct {
	cfg ReaderConfig

	ctx     *simnet.Context
	rng     interface{ Intn(int) int }
	pending map[uint64]*pendingRead
	seq     uint64

	latencies   []float64
	reads       int
	mismatches  int // transient disagreements that later converged
	divergences int // reads that never converged within the retry budget
}

// ReaderConfig parameterizes a VerifiedReader.
type ReaderConfig struct {
	// Endpoints are the t+1 validators every read queries.
	Endpoints []simnet.NodeID
	// Accounts is the universe read from (picked uniformly).
	Accounts []chain.Address
	// Rate is the read issue rate in reads/s.
	Rate float64
	// Timeout bounds one read round before it counts as mismatching.
	Timeout time.Duration
	// MaxRetries bounds re-reads after a mismatch before declaring a
	// divergence.
	MaxRetries int
	// RetryDelay spaces re-reads out, giving lagging replicas time to
	// converge; defaults to Timeout.
	RetryDelay time.Duration
	// Stop ends read issuing; zero means never.
	Stop time.Duration
}

func (c ReaderConfig) withDefaults() ReaderConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = c.Timeout
	}
	return c
}

type pendingRead struct {
	addr      chain.Address
	started   time.Duration
	attempt   int
	responses map[simnet.NodeID]chain.ReadResp
}

var _ simnet.Handler = (*VerifiedReader)(nil)

// NewVerifiedReader creates a reader.
func NewVerifiedReader(cfg ReaderConfig) *VerifiedReader {
	if len(cfg.Endpoints) == 0 {
		panic("client: verified reader needs endpoints")
	}
	if len(cfg.Accounts) == 0 {
		panic("client: verified reader needs accounts")
	}
	if cfg.Rate <= 0 {
		panic("client: verified reader rate must be positive")
	}
	return &VerifiedReader{cfg: cfg.withDefaults(), pending: make(map[uint64]*pendingRead)}
}

// Start implements simnet.Handler.
func (r *VerifiedReader) Start(ctx *simnet.Context) {
	r.ctx = ctx
	r.rng = ctx.RNG("credence")
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ctx.Every(interval, r.tick)
}

// Stop implements simnet.Handler.
func (r *VerifiedReader) Stop() {}

// Deliver implements simnet.Handler.
func (r *VerifiedReader) Deliver(from simnet.NodeID, payload any) {
	resp, ok := payload.(chain.ReadResp)
	if !ok {
		return
	}
	p, ok := r.pending[resp.Seq]
	if !ok {
		return
	}
	p.responses[from] = resp
	if len(p.responses) < len(r.cfg.Endpoints) {
		return
	}
	r.finish(resp.Seq, p)
}

func (r *VerifiedReader) tick() {
	now := r.ctx.Now()
	if r.cfg.Stop > 0 && now >= r.cfg.Stop {
		return
	}
	addr := r.cfg.Accounts[r.rng.Intn(len(r.cfg.Accounts))]
	r.issue(addr, now, 0)
}

func (r *VerifiedReader) issue(addr chain.Address, started time.Duration, attempt int) {
	r.seq++
	seq := r.seq
	r.pending[seq] = &pendingRead{
		addr:      addr,
		started:   started,
		attempt:   attempt,
		responses: make(map[simnet.NodeID]chain.ReadResp, len(r.cfg.Endpoints)),
	}
	if attempt == 0 {
		r.reads++
	}
	for _, ep := range r.cfg.Endpoints {
		r.ctx.Send(ep, chain.ReadReq{Seq: seq, Addr: addr})
	}
	r.ctx.After(r.cfg.Timeout, func() {
		if p, live := r.pending[seq]; live {
			// Missing responses count as disagreement: a silent
			// validator is indistinguishable from a lying one.
			r.retryOrDiverge(seq, p)
		}
	})
}

func (r *VerifiedReader) finish(seq uint64, p *pendingRead) {
	if r.unanimous(p) {
		delete(r.pending, seq)
		r.latencies = append(r.latencies, (r.ctx.Now() - p.started).Seconds())
		return
	}
	r.retryOrDiverge(seq, p)
}

// unanimous reports whether all endpoints returned the same account state.
func (r *VerifiedReader) unanimous(p *pendingRead) bool {
	var first *chain.ReadResp
	for _, resp := range p.responses {
		resp := resp
		if first == nil {
			first = &resp
			continue
		}
		if resp.Balance != first.Balance || resp.Nonce != first.Nonce {
			return false
		}
	}
	return first != nil
}

func (r *VerifiedReader) retryOrDiverge(seq uint64, p *pendingRead) {
	delete(r.pending, seq)
	r.mismatches++
	if p.attempt >= r.cfg.MaxRetries {
		r.divergences++
		return
	}
	r.ctx.After(r.cfg.RetryDelay, func() {
		r.issue(p.addr, p.started, p.attempt+1)
	})
}

// Latencies returns verified-read latencies in seconds.
func (r *VerifiedReader) Latencies() []float64 { return r.latencies }

// Reads returns how many logical reads were issued.
func (r *VerifiedReader) Reads() int { return r.reads }

// Mismatches returns how many read rounds disagreed (including rounds that
// later converged on retry).
func (r *VerifiedReader) Mismatches() int { return r.mismatches }

// Divergences returns how many reads never converged: with fewer than t+1
// honest responses, the client refuses to return a value.
func (r *VerifiedReader) Divergences() int { return r.divergences }
