package client

import (
	"sort"
	"time"

	"stabl/internal/chain"
	"stabl/internal/simnet"
	"stabl/internal/workload"
)

// FlowConfig parameterizes a FlowClient.
type FlowConfig struct {
	// Endpoints is the client-facing validator pool. Member m of the flow
	// submits to Endpoints[(start+m+j) mod len] for j < Fanout, the same
	// round-robin spread the per-client path uses, so latency attribution
	// per modeled client is preserved.
	Endpoints []simnet.NodeID
	// Start is the global index of the flow's first modeled client; it
	// offsets the endpoint round-robin so multiple flows tile the pool
	// exactly like the equivalent individual clients would.
	Start int
	// Fanout is how many endpoints each modeled client submits to: 1 is
	// the default SDK, t+1 the secure client.
	Fanout int
	// Rate is the per-modeled-client submission rate in tx/s. Each flow
	// tick submits one transaction per member, so the aggregate rate is
	// Rate * k while the event-loop cost stays one ticker per flow.
	Rate float64
	// Stop is when the flow stops submitting (zero = never).
	Stop time.Duration
	// Profile shapes the send rate over time (nil = constant).
	Profile workload.Profile
	// RetryAfter resubmits unconfirmed transactions; zero disables.
	RetryAfter time.Duration
	// MaxRetries bounds resubmissions per transaction.
	MaxRetries int
	// VirtualBase is the node id member 0 would hold in the classic
	// per-client layout. Each member m submits via Context.SendAs with
	// virtual id VirtualBase+m, so its latency/loss/jitter draws come from
	// the exact streams the individual client node would have consumed —
	// that is what keeps flow trajectories byte-identical to classic ones
	// under the network's per-sender-node RNG streams.
	VirtualBase simnet.NodeID
}

// FlowClient drives the aggregated workload of k modeled clients through a
// single simnet endpoint. Submission instants, per-member endpoint choice,
// retry order and confirmation semantics reproduce k individual Clients
// exactly (see workload.Flow for the equivalence contract); only the
// per-client event loops are gone — one ticker and one retry scan serve
// the whole flow.
type FlowClient struct {
	cfg  FlowConfig
	flow *workload.Flow

	ctx        *simnet.Context
	ticker     interface{ Stop() }
	pending    map[chain.TxID]*pendingTx
	order      []chain.TxID // pending txs in submission order
	credits    float64
	lastAccrue time.Duration
	latencies  []float64
	completeAt []time.Duration
	submitted  int
	retried    int
	duplicates int
}

var _ simnet.Handler = (*FlowClient)(nil)

// NewFlow creates a flow client; flow supplies its transactions.
func NewFlow(cfg FlowConfig, flow *workload.Flow) *FlowClient {
	if len(cfg.Endpoints) == 0 {
		panic("client: flow has no endpoints")
	}
	if cfg.Fanout <= 0 || cfg.Fanout > len(cfg.Endpoints) {
		panic("client: flow fanout out of range")
	}
	if cfg.Rate <= 0 {
		panic("client: flow rate must be positive")
	}
	return &FlowClient{cfg: cfg, flow: flow, pending: make(map[chain.TxID]*pendingTx)}
}

// Start implements simnet.Handler.
func (c *FlowClient) Start(ctx *simnet.Context) {
	c.ctx = ctx
	interval := time.Duration(float64(time.Second) / c.cfg.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	if c.cfg.Profile == nil {
		c.ticker = ctx.Every(interval, c.tick)
	} else {
		c.lastAccrue = ctx.Now()
		step := interval / 4
		if step <= 0 {
			step = time.Millisecond
		}
		c.ticker = ctx.Every(step, c.accrue)
	}
	if c.cfg.RetryAfter > 0 {
		ctx.Every(time.Second, c.checkRetries)
	}
}

// Stop implements simnet.Handler.
func (c *FlowClient) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// endpoints writes member m's endpoint set into buf and returns it.
func (c *FlowClient) endpoints(member uint32, buf []simnet.NodeID) []simnet.NodeID {
	buf = buf[:0]
	n := len(c.cfg.Endpoints)
	for j := 0; j < c.cfg.Fanout; j++ {
		buf = append(buf, c.cfg.Endpoints[(c.cfg.Start+int(member)+j)%n])
	}
	return buf
}

func (c *FlowClient) tick() {
	now := c.ctx.Now()
	if c.cfg.Stop > 0 && now >= c.cfg.Stop {
		c.ticker.Stop()
		return
	}
	c.submitRound(now)
}

// accrue implements profile-shaped submission. Credits accrue at the
// per-member rate — every member's credit trajectory is identical, so one
// counter stands in for all k, and each whole credit releases one
// transaction per member, exactly when the individual clients would have
// crossed their own thresholds.
func (c *FlowClient) accrue() {
	now := c.ctx.Now()
	if c.cfg.Stop > 0 && now >= c.cfg.Stop {
		c.ticker.Stop()
		return
	}
	dt := now - c.lastAccrue
	c.lastAccrue = now
	rate := c.cfg.Rate
	if c.cfg.Profile != nil {
		rate *= c.cfg.Profile(now)
	}
	if rate < 0 {
		rate = 0
	}
	c.credits += rate * dt.Seconds()
	for c.credits >= 1 {
		c.credits--
		c.submitRound(now)
	}
}

// submitRound submits one transaction per modeled client, in member order —
// the same global order the individual clients produce at a shared tick
// instant.
func (c *FlowClient) submitRound(now time.Duration) {
	var epBuf [8]simnet.NodeID
	k := c.flow.Clients()
	for m := 0; m < k; m++ {
		tx := c.flow.Next(now)
		c.order = append(c.order, tx.ID)
		c.pending[tx.ID] = &pendingTx{
			tx:        tx,
			confirmed: make(map[simnet.NodeID]bool, c.cfg.Fanout),
			retryAt:   now + c.cfg.RetryAfter,
		}
		c.submitted++
		eps := c.endpoints(uint32(m), epBuf[:0])
		virtual := c.cfg.VirtualBase + simnet.NodeID(m)
		for _, ep := range eps {
			c.ctx.SendAs(virtual, ep, chain.SubmitTx{Tx: tx})
		}
	}
}

// Deliver implements simnet.Handler.
func (c *FlowClient) Deliver(from simnet.NodeID, payload any) {
	msg, ok := payload.(chain.TxCommitted)
	if !ok {
		return
	}
	p, ok := c.pending[msg.ID]
	if !ok {
		c.duplicates++
		return
	}
	p.confirmed[from] = true
	if len(p.confirmed) < c.cfg.Fanout {
		return
	}
	lat := c.ctx.Now() - p.tx.Submitted
	c.latencies = append(c.latencies, lat.Seconds())
	c.completeAt = append(c.completeAt, c.ctx.Now())
	delete(c.pending, msg.ID)
}

// checkRetries rescans pending transactions once per second. Individual
// clients scan member-by-member (each client owns a retry ticker, firing in
// client order), so the flow walks its live set in TxID order — (member,
// sequence) lexicographic — which is exactly that global order.
func (c *FlowClient) checkRetries() {
	now := c.ctx.Now()
	// Compact completed entries out of the submission-order list, then
	// resubmit from a (member, seq)-sorted copy: retransmissions draw
	// latency samples from the shared network RNG, so their order must
	// reproduce the per-client schedule.
	live := c.order[:0]
	for _, id := range c.order {
		if _, ok := c.pending[id]; ok {
			live = append(live, id)
		}
	}
	c.order = live
	scan := append([]chain.TxID(nil), live...)
	sort.Slice(scan, func(i, j int) bool { return scan[i] < scan[j] })
	var epBuf [8]simnet.NodeID
	for _, id := range scan {
		p := c.pending[id]
		if p.retryAt > now {
			continue
		}
		if c.cfg.MaxRetries > 0 && p.retries >= c.cfg.MaxRetries {
			continue
		}
		p.retries++
		c.retried++
		p.retryAt = now + c.cfg.RetryAfter
		member := uint32(p.tx.ID >> 32) - uint32(c.flowStart())
		eps := c.endpoints(member, epBuf[:0])
		virtual := c.cfg.VirtualBase + simnet.NodeID(member)
		for _, ep := range eps {
			if !p.confirmed[ep] {
				c.ctx.SendAs(virtual, ep, chain.SubmitTx{Tx: p.tx})
			}
		}
	}
}

// flowStart returns the global index of member 0 (the TxID namespace base).
func (c *FlowClient) flowStart() int { return c.cfg.Start }

// Clients returns how many clients this flow models.
func (c *FlowClient) Clients() int { return c.flow.Clients() }

// Latencies returns the commit latencies (in seconds) of completed
// transactions, in completion order.
func (c *FlowClient) Latencies() []float64 { return c.latencies }

// CompletionTimes returns when each completed transaction finished.
func (c *FlowClient) CompletionTimes() []time.Duration { return c.completeAt }

// Submitted returns how many distinct transactions were issued.
func (c *FlowClient) Submitted() int { return c.submitted }

// PendingCount returns how many transactions never completed.
func (c *FlowClient) PendingCount() int { return len(c.pending) }

// Retried returns how many resubmissions occurred.
func (c *FlowClient) Retried() int { return c.retried }
