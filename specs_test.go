package stabl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShippedSpecsValidate walks every JSON file under specs/ through the
// same ValidateSpec path the `stabl spec -validate` command uses, so a spec
// that drifts from the schema (renamed field, out-of-range scenario node,
// unknown fault) breaks the build rather than a future experiment.
func TestShippedSpecsValidate(t *testing.T) {
	var files []string
	err := filepath.WalkDir("specs", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 7 {
		t.Fatalf("found only %d spec files under specs/ — shipped examples missing", len(files))
	}
	var scenarios, campaigns int
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		kind, err := ValidateSpec(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		switch kind {
		case "campaign":
			campaigns++
		case "experiment":
			if strings.HasPrefix(path, filepath.Join("specs", "scenarios")) {
				scenarios++
			}
		default:
			t.Errorf("%s: unexpected spec kind %q", path, kind)
		}
	}
	if scenarios < 3 {
		t.Errorf("only %d scenario specs under specs/scenarios/, want the 3 shipped examples", scenarios)
	}
	if campaigns < 2 {
		t.Errorf("only %d campaign specs, want the crash and scenario sweeps", campaigns)
	}
}

// TestValidateSpecRejectsBrokenInput pins the failure modes ValidateSpec must
// catch: malformed JSON, unknown fields and semantically invalid configs.
func TestValidateSpecRejectsBrokenInput(t *testing.T) {
	cases := map[string]string{
		"malformed":          `{"system": "Redbelly"`,
		"unknown field":      `{"system": "Redbelly", "warp": 9}`,
		"unknown system":     `{"system": "Atlantis"}`,
		"bad scenario":       `{"system": "Redbelly", "scenario": {"name": "x", "actions": [{"op": "melt", "atSec": 1, "nodes": "all"}]}}`,
		"campaign bad fault": `{"systems": ["Redbelly"], "faults": ["meteor"]}`,
	}
	for name, body := range cases {
		if _, err := ValidateSpec(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}
