module stabl

go 1.22
